// Pins the Engine's two load-bearing guarantees (core/engine.hpp):
//
//  1. Serial equivalence — an Engine fed queries one drain at a time
//     reproduces run_pipeline's RunReport bit-for-bit, for every placement
//     scheduler x rate allocator pair the registry knows.
//  2. Concurrent determinism — a drain with many pending queries placed on
//     the parallel fan-out yields bit-identical reports run after run,
//     regardless of the worker-thread count. The suite carries the
//     tsan_smoke label so the sanitizer build races the fan-out for real.
#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "core/pipeline.hpp"
#include "core/registry.hpp"

namespace ccf::core {
namespace {

// Small enough that the "exact" branch-and-bound scheduler stays fast, big
// enough that placements differ across schedulers.
data::Workload tiny_workload(std::uint64_t seed) {
  data::WorkloadSpec spec;
  spec.nodes = 4;
  spec.partitions = 8;
  spec.customer_bytes = 4e6;
  spec.orders_bytes = 4e7;
  spec.zipf_theta = 0.8;
  spec.skew = 0.3;
  spec.seed = seed;
  return data::generate_workload(spec);
}

std::vector<std::string> all_scheduler_names() {
  std::vector<std::string> names;
  for (const auto name : registry::scheduler_names()) names.emplace_back(name);
  return names;
}

std::vector<std::string> all_allocator_names() {
  std::vector<std::string> names;
  for (const auto name : registry::allocator_names()) names.emplace_back(name);
  return names;
}

// ---------------------------------------------------------------------------
// Serial equivalence: scheduler x allocator.

class EngineEquivalence
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(EngineEquivalence, SerialSessionMatchesRunPipeline) {
  const auto& [scheduler, allocator] = GetParam();

  PipelineOptions popts;
  popts.scheduler = scheduler;
  popts.allocator = allocator;

  EngineOptions eopts;
  eopts.nodes = 4;
  eopts.allocator = allocator;
  Engine engine(eopts);

  // One session, queries fed serially: each drain is a fresh one-query epoch
  // and must equal the corresponding isolated run_pipeline call exactly.
  for (const std::uint64_t seed : {11u, 12u}) {
    const data::Workload w = tiny_workload(seed);
    const RunReport expected = run_pipeline(w, popts);

    QuerySpec query(scheduler, data::Workload(w), scheduler);
    engine.submit(std::move(query));
    EngineReport epoch = engine.drain();

    ASSERT_EQ(epoch.queries.size(), 1u);
    const RunReport& got = epoch.queries.front();
    EXPECT_EQ(got.scheduler, expected.scheduler);
    EXPECT_EQ(got.skew_handled, expected.skew_handled);
    EXPECT_EQ(got.flow_count, expected.flow_count);
    // Bit-identical, not approximately equal: the same stage code ran on the
    // same inputs and the same single-coflow simulation.
    EXPECT_EQ(got.traffic_bytes, expected.traffic_bytes);
    EXPECT_EQ(got.makespan_bytes, expected.makespan_bytes);
    EXPECT_EQ(got.gamma_seconds, expected.gamma_seconds);
    EXPECT_EQ(got.cct_seconds, expected.cct_seconds);
    EXPECT_EQ(epoch.sim.events, expected.sim.events);
    EXPECT_EQ(epoch.sim.total_bytes, expected.sim.total_bytes);
    EXPECT_EQ(epoch.makespan, expected.sim.makespan);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, EngineEquivalence,
    ::testing::Combine(::testing::ValuesIn(all_scheduler_names()),
                       ::testing::ValuesIn(all_allocator_names())),
    [](const auto& param_info) {
      std::string label =
          std::get<0>(param_info.param) + "_" + std::get<1>(param_info.param);
      for (char& c : label) {
        if (c == '-') c = '_';
      }
      return label;
    });

// ---------------------------------------------------------------------------
// Concurrent determinism.

EngineReport concurrent_session(std::size_t placement_threads) {
  EngineOptions opts;
  opts.nodes = 4;
  opts.allocator = "madd";
  opts.placement_threads = placement_threads;
  Engine engine(opts);

  const std::vector<std::string> schedulers = all_scheduler_names();
  for (std::size_t q = 0; q < 8; ++q) {
    QuerySpec query("q" + std::to_string(q), tiny_workload(100 + q),
                    schedulers[q % schedulers.size()],
                    0.05 * static_cast<double>(q));
    engine.submit(std::move(query));
  }
  EXPECT_EQ(engine.pending(), 8u);
  return engine.drain();
}

void expect_identical(const EngineReport& a, const EngineReport& b) {
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (std::size_t q = 0; q < a.queries.size(); ++q) {
    EXPECT_EQ(a.queries[q].scheduler, b.queries[q].scheduler) << q;
    EXPECT_EQ(a.queries[q].traffic_bytes, b.queries[q].traffic_bytes) << q;
    EXPECT_EQ(a.queries[q].makespan_bytes, b.queries[q].makespan_bytes) << q;
    EXPECT_EQ(a.queries[q].gamma_seconds, b.queries[q].gamma_seconds) << q;
    EXPECT_EQ(a.queries[q].cct_seconds, b.queries[q].cct_seconds) << q;
    EXPECT_EQ(a.queries[q].flow_count, b.queries[q].flow_count) << q;
  }
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.total_traffic_bytes, b.total_traffic_bytes);
  EXPECT_EQ(a.sim.events, b.sim.events);
  EXPECT_EQ(a.sim.total_bytes, b.sim.total_bytes);
  ASSERT_EQ(a.sim.coflows.size(), b.sim.coflows.size());
  for (std::size_t c = 0; c < a.sim.coflows.size(); ++c) {
    EXPECT_EQ(a.sim.coflows[c].name, b.sim.coflows[c].name) << c;
    EXPECT_EQ(a.sim.coflows[c].completion, b.sim.coflows[c].completion) << c;
  }
}

TEST(EngineConcurrency, EightQueryDrainIsDeterministic) {
  const EngineReport first = concurrent_session(0);
  ASSERT_EQ(first.queries.size(), 8u);
  EXPECT_EQ(first.sim.coflows.size(), 8u);
  EXPECT_GT(first.makespan, 0.0);
  for (int rep = 0; rep < 3; ++rep) {
    const EngineReport again = concurrent_session(0);
    expect_identical(first, again);
  }
}

TEST(EngineConcurrency, ThreadCountDoesNotChangeTheEpoch) {
  const EngineReport wide = concurrent_session(0);  // hardware concurrency
  for (const std::size_t threads : {1u, 2u, 5u}) {
    const EngineReport narrow = concurrent_session(threads);
    expect_identical(wide, narrow);
  }
}

TEST(EngineConcurrency, ContendingQueriesStretchEachOther) {
  // The shared epoch is an actual contention model: a query's in-session CCT
  // can only be >= its isolated run (MADD work conservation on one fabric).
  const EngineReport epoch = concurrent_session(0);
  PipelineOptions popts;
  const std::vector<std::string> schedulers = all_scheduler_names();
  double isolated_sum = 0.0;
  double shared_sum = 0.0;
  for (std::size_t q = 0; q < 8; ++q) {
    popts.scheduler = schedulers[q % schedulers.size()];
    isolated_sum += run_pipeline(tiny_workload(100 + q), popts).cct_seconds;
    shared_sum += epoch.queries[q].cct_seconds;
  }
  EXPECT_GE(shared_sum, isolated_sum * (1.0 - 1e-6));
}

TEST(EngineConcurrency, ConcurrentSubmittersLoseNoQueries) {
  // submit() is advertised thread-safe (core::Service pushes client
  // submissions at a shard while its driver drains it). Race four
  // submitters against a draining consumer; every submission must land in
  // exactly one epoch.
  EngineOptions opts;
  opts.nodes = 4;
  Engine engine(opts);
  const auto workload =
      std::make_shared<const data::Workload>(tiny_workload(77));

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 32;
  std::vector<std::thread> submitters;
  for (std::size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        engine.submit(QuerySpec("t" + std::to_string(t), workload));
      }
    });
  }
  std::size_t drained = 0;
  while (drained < kThreads * kPerThread) {
    drained += engine.drain().queries.size();
  }
  for (std::thread& s : submitters) s.join();
  drained += engine.drain().queries.size();

  EXPECT_EQ(drained, kThreads * kPerThread);
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.queries, kThreads * kPerThread);
  EXPECT_EQ(stats.plan_hits + stats.plan_misses, kThreads * kPerThread);
  EXPECT_EQ(engine.pending(), 0u);
}

// ---------------------------------------------------------------------------
// Session lifecycle and validation.

TEST(Engine, StatsAccumulateAcrossDrains) {
  EngineOptions opts;
  opts.nodes = 4;
  Engine engine(opts);
  engine.submit(QuerySpec("a", tiny_workload(1)));
  engine.drain();
  engine.submit(QuerySpec("b", tiny_workload(2)));
  engine.submit(QuerySpec("c", tiny_workload(3)));
  engine.drain();
  EXPECT_EQ(engine.stats().epochs, 2u);
  EXPECT_EQ(engine.stats().queries, 3u);
  EXPECT_GT(engine.stats().total_traffic_bytes, 0.0);
  EXPECT_GT(engine.stats().sim_events, 0u);
  EXPECT_EQ(engine.pending(), 0u);
}

TEST(Engine, EmptyDrainReturnsEmptyReport) {
  EngineOptions opts;
  opts.nodes = 4;
  Engine engine(opts);
  const EngineReport epoch = engine.drain();
  EXPECT_TRUE(epoch.queries.empty());
  EXPECT_TRUE(epoch.sim.coflows.empty());
  EXPECT_EQ(epoch.makespan, 0.0);
  // An empty epoch still counts as a drain; no queries though.
  EXPECT_EQ(engine.stats().epochs, 1u);
  EXPECT_EQ(engine.stats().queries, 0u);
}

TEST(Engine, AnalyticModeReportsGammaAsCct) {
  EngineOptions opts;
  opts.nodes = 4;
  opts.simulate = false;
  Engine engine(opts);
  engine.submit(QuerySpec("q", tiny_workload(5)));
  const EngineReport epoch = engine.drain();
  ASSERT_EQ(epoch.queries.size(), 1u);
  EXPECT_DOUBLE_EQ(epoch.queries[0].cct_seconds, epoch.queries[0].gamma_seconds);
  EXPECT_TRUE(epoch.sim.coflows.empty());
  EXPECT_EQ(epoch.makespan, 0.0);
}

TEST(Engine, PrebuiltFlowsSkipPlacement) {
  EngineOptions opts;
  opts.nodes = 3;
  Engine engine(opts);
  net::FlowMatrix flows(3);
  flows.set(0, 1, 125e6);
  flows.set(2, 1, 125e6);
  engine.submit("prebuilt", 0.0, std::move(flows));
  const EngineReport epoch = engine.drain();
  ASSERT_EQ(epoch.queries.size(), 1u);
  EXPECT_EQ(epoch.queries[0].flow_count, 2u);
  EXPECT_DOUBLE_EQ(epoch.queries[0].traffic_bytes, 250e6);
  // Both flows share node 1's ingress: 250 MB over one 125 MB/s port.
  EXPECT_NEAR(epoch.queries[0].cct_seconds, 2.0, 1e-9);
}

TEST(Engine, FaultScheduleAppliesToEveryEpoch) {
  EngineOptions clean_opts;
  clean_opts.nodes = 4;
  EngineOptions faulty_opts = clean_opts;
  faulty_opts.faults.slow_node(0.0, 0, 0.5);
  Engine clean(clean_opts);
  Engine faulty(faulty_opts);
  for (Engine* engine : {&clean, &faulty}) {
    engine->submit(QuerySpec("q", tiny_workload(9)));
  }
  const EngineReport c = clean.drain();
  const EngineReport f = faulty.drain();
  EXPECT_GT(f.queries[0].cct_seconds, c.queries[0].cct_seconds);
  EXPECT_GT(f.sim.fault_events, 0u);
  EXPECT_EQ(f.queries[0].gamma_seconds, c.queries[0].gamma_seconds);
}

TEST(Engine, ValidatesOptionsAndSubmissions) {
  EXPECT_THROW(Engine(EngineOptions{}), std::invalid_argument);  // nodes == 0
  EngineOptions bad_alloc;
  bad_alloc.nodes = 4;
  bad_alloc.allocator = "bogus";
  EXPECT_THROW(Engine{bad_alloc}, std::invalid_argument);

  EngineOptions opts;
  opts.nodes = 4;
  Engine engine(opts);
  EXPECT_THROW(engine.submit(QuerySpec{}), std::invalid_argument);  // no data
  EXPECT_THROW(engine.submit(QuerySpec("q", tiny_workload(1), "bogus")),
               std::invalid_argument);
  EXPECT_THROW(engine.submit(QuerySpec("q", tiny_workload(1), "ccf", -1.0)),
               std::invalid_argument);
  QuerySpec wrong_width("q", tiny_workload(1));
  EngineOptions wide_opts;
  wide_opts.nodes = 8;
  Engine wide(wide_opts);
  EXPECT_THROW(wide.submit(std::move(wrong_width)), std::invalid_argument);
  net::FlowMatrix small(2);
  EXPECT_THROW(engine.submit("pre", 0.0, std::move(small)),
               std::invalid_argument);
  // Nothing half-submitted survives a rejected call.
  EXPECT_EQ(engine.pending(), 0u);
}

}  // namespace
}  // namespace ccf::core
