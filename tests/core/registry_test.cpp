// Pins the policy registry (core/registry.hpp) against the layer factories
// it fronts: every listed name must resolve, resolve to an implementation
// that reports the same name, and round-trip through the AllocatorKind
// mapping. This is the drift guard — adding a scheduler to
// join::make_scheduler without registering it here (or vice versa) should
// fail loudly in exactly one place.
#include "core/registry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "sched/ordering.hpp"

namespace ccf::core::registry {
namespace {

TEST(Registry, SchedulerNamesResolveThroughTheJoinFactory) {
  EXPECT_GE(scheduler_names().size(), 7u);
  for (const auto name : scheduler_names()) {
    const std::string n(name);
    EXPECT_TRUE(has_scheduler(name)) << n;
    const auto scheduler = make_scheduler(n);
    ASSERT_NE(scheduler, nullptr) << n;
    EXPECT_EQ(scheduler->name(), n);
    // The registry delegates to the layer factory — same instance behavior.
    EXPECT_EQ(join::make_scheduler(n)->name(), n);
  }
}

TEST(Registry, AllocatorNamesResolveThroughTheirLayerFactories) {
  EXPECT_GE(allocator_names().size(), 7u);
  for (const auto name : allocator_names()) {
    const std::string n(name);
    EXPECT_TRUE(has_allocator(name)) << n;
    const auto allocator = make_allocator(n);
    ASSERT_NE(allocator, nullptr) << n;
    EXPECT_EQ(allocator->name(), n);
    // The registry dispatches ordering schedulers to the sched layer and
    // everything else to the net factory; each name must resolve through
    // exactly its own layer.
    if (sched::has_ordering(name)) {
      EXPECT_EQ(sched::make_ordered_allocator(n)->name(), n);
      EXPECT_THROW(net::make_allocator(n), std::invalid_argument) << n;
    } else {
      EXPECT_EQ(net::make_allocator(n)->name(), n);
    }
  }
}

TEST(Registry, OrderingSchedulersAreRegisteredAllocators) {
  // The names the sched layer exports must all be reachable through the
  // registry (this is how ccf_sim / ccf_serve / the Engine see them), and
  // the --help text those tools print — allocator_name_list() verbatim —
  // must advertise them.
  EXPECT_GE(sched::ordering_names().size(), 2u);
  const std::string help = allocator_name_list();
  for (const auto name : sched::ordering_names()) {
    EXPECT_TRUE(has_allocator(name)) << name;
    EXPECT_NE(help.find(name), std::string::npos) << name;
    EXPECT_NE(sched::make_ordering(std::string(name)), nullptr);
  }
  EXPECT_TRUE(has_allocator("sincronia"));
  EXPECT_TRUE(has_allocator("lp-order"));
  EXPECT_FALSE(sched::has_ordering("varys"));
  EXPECT_THROW(sched::make_ordering("varys"), std::invalid_argument);
}

TEST(Registry, RoutingNamesResolveThroughTheNetFactory) {
  EXPECT_GE(routing_names().size(), 3u);
  for (const auto name : routing_names()) {
    const std::string n(name);
    EXPECT_TRUE(has_routing(name)) << n;
    const auto routing = make_routing(n);
    ASSERT_NE(routing, nullptr) << n;
    EXPECT_EQ(routing->name(), n);
    EXPECT_EQ(net::make_routing_policy(n)->name(), n);
  }
}

TEST(Registry, AllocatorKindRoundTrips) {
  // Only the classic net-layer policies have an AllocatorKind; the ordering
  // schedulers are name-only and must be rejected by the kind mapping.
  for (const auto name : allocator_names()) {
    const std::string n(name);
    if (sched::has_ordering(name)) {
      EXPECT_THROW(allocator_kind(n), std::invalid_argument) << n;
    } else {
      EXPECT_EQ(allocator_name(allocator_kind(n)), name) << n;
    }
  }
}

TEST(Registry, HelpListsContainEveryName) {
  const std::string schedulers = scheduler_name_list();
  for (const auto name : scheduler_names()) {
    EXPECT_NE(schedulers.find(name), std::string::npos) << name;
  }
  const std::string allocators = allocator_name_list();
  for (const auto name : allocator_names()) {
    EXPECT_NE(allocators.find(name), std::string::npos) << name;
  }
  const std::string routings = routing_name_list();
  for (const auto name : routing_names()) {
    EXPECT_NE(routings.find(name), std::string::npos) << name;
  }
  EXPECT_NE(schedulers.find(" | "), std::string::npos);
  EXPECT_NE(allocators.find(" | "), std::string::npos);
  EXPECT_NE(routings.find(" | "), std::string::npos);
}

TEST(Registry, UnknownNamesAreRejected) {
  EXPECT_FALSE(has_scheduler("bogus"));
  EXPECT_FALSE(has_allocator("bogus"));
  EXPECT_FALSE(has_routing("bogus"));
  EXPECT_THROW(make_scheduler("bogus"), std::invalid_argument);
  EXPECT_THROW(make_allocator("bogus"), std::invalid_argument);
  EXPECT_THROW(make_routing("bogus"), std::invalid_argument);
  EXPECT_THROW(allocator_kind("bogus"), std::invalid_argument);
  // Case and whitespace are significant: names are exact tokens.
  EXPECT_FALSE(has_scheduler("CCF"));
  EXPECT_FALSE(has_allocator(" madd"));
  EXPECT_FALSE(has_routing("ECMP"));
  EXPECT_FALSE(has_allocator("Sincronia"));
  EXPECT_FALSE(has_allocator("lp_order"));
}

}  // namespace
}  // namespace ccf::core::registry
