// Pins the policy registry (core/registry.hpp) against the layer factories
// it fronts: every listed name must resolve, resolve to an implementation
// that reports the same name, and round-trip through the AllocatorKind
// mapping. This is the drift guard — adding a scheduler to
// join::make_scheduler without registering it here (or vice versa) should
// fail loudly in exactly one place.
#include "core/registry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace ccf::core::registry {
namespace {

TEST(Registry, SchedulerNamesResolveThroughTheJoinFactory) {
  EXPECT_GE(scheduler_names().size(), 7u);
  for (const auto name : scheduler_names()) {
    const std::string n(name);
    EXPECT_TRUE(has_scheduler(name)) << n;
    const auto scheduler = make_scheduler(n);
    ASSERT_NE(scheduler, nullptr) << n;
    EXPECT_EQ(scheduler->name(), n);
    // The registry delegates to the layer factory — same instance behavior.
    EXPECT_EQ(join::make_scheduler(n)->name(), n);
  }
}

TEST(Registry, AllocatorNamesResolveThroughTheNetFactory) {
  EXPECT_GE(allocator_names().size(), 5u);
  for (const auto name : allocator_names()) {
    const std::string n(name);
    EXPECT_TRUE(has_allocator(name)) << n;
    const auto allocator = make_allocator(n);
    ASSERT_NE(allocator, nullptr) << n;
    EXPECT_EQ(allocator->name(), n);
    EXPECT_EQ(net::make_allocator(n)->name(), n);
  }
}

TEST(Registry, RoutingNamesResolveThroughTheNetFactory) {
  EXPECT_GE(routing_names().size(), 3u);
  for (const auto name : routing_names()) {
    const std::string n(name);
    EXPECT_TRUE(has_routing(name)) << n;
    const auto routing = make_routing(n);
    ASSERT_NE(routing, nullptr) << n;
    EXPECT_EQ(routing->name(), n);
    EXPECT_EQ(net::make_routing_policy(n)->name(), n);
  }
}

TEST(Registry, AllocatorKindRoundTrips) {
  for (const auto name : allocator_names()) {
    const std::string n(name);
    EXPECT_EQ(allocator_name(allocator_kind(n)), name) << n;
  }
}

TEST(Registry, HelpListsContainEveryName) {
  const std::string schedulers = scheduler_name_list();
  for (const auto name : scheduler_names()) {
    EXPECT_NE(schedulers.find(name), std::string::npos) << name;
  }
  const std::string allocators = allocator_name_list();
  for (const auto name : allocator_names()) {
    EXPECT_NE(allocators.find(name), std::string::npos) << name;
  }
  const std::string routings = routing_name_list();
  for (const auto name : routing_names()) {
    EXPECT_NE(routings.find(name), std::string::npos) << name;
  }
  EXPECT_NE(schedulers.find(" | "), std::string::npos);
  EXPECT_NE(allocators.find(" | "), std::string::npos);
  EXPECT_NE(routings.find(" | "), std::string::npos);
}

TEST(Registry, UnknownNamesAreRejected) {
  EXPECT_FALSE(has_scheduler("bogus"));
  EXPECT_FALSE(has_allocator("bogus"));
  EXPECT_FALSE(has_routing("bogus"));
  EXPECT_THROW(make_scheduler("bogus"), std::invalid_argument);
  EXPECT_THROW(make_allocator("bogus"), std::invalid_argument);
  EXPECT_THROW(make_routing("bogus"), std::invalid_argument);
  EXPECT_THROW(allocator_kind("bogus"), std::invalid_argument);
  // Case and whitespace are significant: names are exact tokens.
  EXPECT_FALSE(has_scheduler("CCF"));
  EXPECT_FALSE(has_allocator(" madd"));
  EXPECT_FALSE(has_routing("ECMP"));
}

}  // namespace
}  // namespace ccf::core::registry
