// Assorted edge cases across the stack: degenerate cluster sizes, empty and
// all-zero inputs, heterogeneous fabrics, engine guard rails, and
// allocator choice inside the pipeline.
#include <gtest/gtest.h>

#include <cmath>

#include "core/pipeline.hpp"
#include "core/registry.hpp"
#include "join/schedulers.hpp"
#include "net/metrics.hpp"
#include "net/simulator.hpp"

namespace ccf {
namespace {

data::Workload tiny_workload(std::size_t nodes, std::size_t partitions,
                             double skew = 0.2) {
  data::WorkloadSpec spec;
  spec.nodes = nodes;
  spec.partitions = partitions;
  spec.customer_bytes = 1e5;
  spec.orders_bytes = 1e6;
  spec.skew = skew;
  spec.seed = 17;
  return data::generate_workload(spec);
}

TEST(EdgeCases, SingleNodePipelineIsFree) {
  const auto w = tiny_workload(1, 5);
  for (const char* name : {"hash", "mini", "ccf"}) {
    const auto r =
        core::run_pipeline(w, core::PipelineOptions::paper_system(name));
    EXPECT_DOUBLE_EQ(r.traffic_bytes, 0.0) << name;
    EXPECT_DOUBLE_EQ(r.cct_seconds, 0.0) << name;
    EXPECT_EQ(r.flow_count, 0u) << name;
  }
}

TEST(EdgeCases, SinglePartitionStillSchedules) {
  const auto w = tiny_workload(4, 1, 0.0);
  const auto r = core::run_pipeline(w, core::PipelineOptions::paper_system("ccf"));
  EXPECT_GT(r.traffic_bytes, 0.0);
  EXPECT_NEAR(r.cct_seconds, r.gamma_seconds, 1e-9 * r.gamma_seconds);
}

TEST(EdgeCases, AllZeroMatrixSchedulesToNoTraffic) {
  data::ChunkMatrix m(10, 4);  // all zeros
  opt::AssignmentProblem p;
  p.matrix = &m;
  for (const char* name : {"hash", "mini", "ccf", "ccf-ls", "exact"}) {
    const auto dest = join::make_scheduler(name)->schedule(p);
    EXPECT_DOUBLE_EQ(opt::makespan(p, dest), 0.0) << name;
  }
}

TEST(EdgeCases, PipelineUnderEveryAllocator) {
  const auto w = tiny_workload(6, 30);
  core::PipelineOptions opts = core::PipelineOptions::paper_system("ccf");
  opts.allocator = "madd";
  const double madd = core::run_pipeline(w, opts).cct_seconds;
  opts.allocator = "varys";
  const double varys = core::run_pipeline(w, opts).cct_seconds;
  opts.allocator = "aalo";
  const double aalo = core::run_pipeline(w, opts).cct_seconds;
  opts.allocator = "fair";
  const double fair = core::run_pipeline(w, opts).cct_seconds;
  // Single coflow: Varys degenerates to MADD; Aalo and fair can only lose.
  EXPECT_NEAR(varys, madd, 1e-9 * madd);
  EXPECT_GE(aalo, madd * (1.0 - 1e-9));
  EXPECT_GE(fair, madd * (1.0 - 1e-9));
}

TEST(EdgeCases, SkewPresentButHandlingDisabledKeepsFullMatrix) {
  const auto w = tiny_workload(5, 20, 0.5);
  core::PipelineOptions opts = core::PipelineOptions::paper_system("ccf");
  opts.skew_handling = false;
  const auto r = core::run_pipeline(w, opts);
  EXPECT_FALSE(r.skew_handled);
  // Without partial duplication the hot mass must cross the wire: traffic at
  // least the remote share of the hot partition.
  EXPECT_GT(r.traffic_bytes, 0.3 * w.skew.skewed_bytes_total());
}

TEST(EdgeCases, HeterogeneousFabricMaddStillHitsGamma) {
  std::vector<double> egress = {10.0, 5.0, 20.0};
  std::vector<double> ingress = {8.0, 16.0, 4.0};
  const net::Fabric fabric(egress, ingress);
  net::FlowMatrix flows(3);
  flows.set(0, 1, 40.0);
  flows.set(1, 2, 12.0);
  flows.set(2, 0, 24.0);
  const double gamma = net::gamma_bound(flows, fabric);
  net::Simulator sim(fabric, net::make_allocator("madd"));
  sim.add_coflow(net::CoflowSpec("c", 0.0, std::move(flows)));
  EXPECT_NEAR(sim.run().coflows[0].cct(), gamma, 1e-9 * gamma);
}

TEST(EdgeCases, SimulatorMaxEventsGuardFires) {
  net::SimConfig cfg;
  cfg.max_events = 1;
  net::FlowMatrix m(3);
  m.set(0, 1, 10.0);
  m.set(0, 2, 30.0);  // fair sharing needs 2 epochs
  net::Simulator sim(net::Fabric(3, 1.0), net::make_allocator("fair"), cfg);
  sim.add_coflow(net::CoflowSpec("c", 0.0, std::move(m)));
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(EdgeCases, SimulatorMaxTimeGuardFires) {
  net::SimConfig cfg;
  cfg.max_time = 0.5;  // the flow needs 10 s
  net::FlowMatrix m(2);
  m.set(0, 1, 10.0);
  net::CoflowSpec first("a", 0.0, m);
  net::CoflowSpec second("b", 1.0, m);  // forces a second epoch past max_time
  net::Simulator sim(net::Fabric(2, 1.0), net::make_allocator("fair"), cfg);
  sim.add_coflow(std::move(first));
  sim.add_coflow(std::move(second));
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(EdgeCases, TinyFlowsBelowEpsilonAreDropped) {
  net::FlowMatrix m(2);
  m.set(0, 1, 1e-9);  // below completion_epsilon
  net::Simulator sim(net::Fabric(2, 1.0), net::make_allocator("madd"));
  sim.add_coflow(net::CoflowSpec("c", 0.0, std::move(m)));
  const auto r = sim.run();
  EXPECT_DOUBLE_EQ(r.coflows[0].cct(), 0.0);
  EXPECT_EQ(r.coflows[0].flows, 0u);
}

TEST(EdgeCases, ZeroWeightDrainEpochHasNoNaNs) {
  // An all-zero-weight epoch is legal (weight >= 0): the ordering scheduler
  // must still drain every coflow, total weighted CCT is exactly 0, and the
  // weighted average guards its denominator (0.0, not 0/0 = NaN).
  for (const char* allocator : {"sincronia", "lp-order", "madd"}) {
    net::Simulator sim(net::Fabric(3, 1.0),
                       core::registry::make_allocator(allocator));
    for (std::size_t c = 0; c < 3; ++c) {
      net::FlowMatrix m(3);
      m.set(c, (c + 1) % 3, 4.0 + static_cast<double>(c));
      net::CoflowSpec spec("z" + std::to_string(c), 0.0, std::move(m));
      spec.weight = 0.0;
      sim.add_coflow(std::move(spec));
    }
    const net::SimReport report = sim.run();
    ASSERT_EQ(report.coflows.size(), 3u) << allocator;
    for (const auto& coflow : report.coflows) {
      EXPECT_GT(coflow.completion, 0.0) << allocator;  // still drained
    }
    EXPECT_DOUBLE_EQ(net::total_weighted_cct(report), 0.0) << allocator;
    const double avg = net::weighted_average_cct(report);
    EXPECT_FALSE(std::isnan(avg)) << allocator;
    EXPECT_DOUBLE_EQ(avg, 0.0) << allocator;
    // The unweighted metric is untouched by weights.
    EXPECT_GT(report.average_cct(), 0.0) << allocator;
  }
}

TEST(EdgeCases, EqualSizedChunksAnyDestinationTies) {
  // Perfectly uniform matrix: CCF must still produce a balanced plan.
  data::ChunkMatrix m(8, 4);
  for (std::size_t k = 0; k < 8; ++k) {
    for (std::size_t i = 0; i < 4; ++i) m.set(k, i, 10.0);
  }
  opt::AssignmentProblem p;
  p.matrix = &m;
  const auto dest = join::CcfScheduler().schedule(p);
  const auto loads = opt::evaluate(p, dest);
  // Optimal T here: each node receives 2 partitions x 30 remote bytes = 60.
  EXPECT_DOUBLE_EQ(loads.makespan(), 60.0);
}

}  // namespace
}  // namespace ccf
