#include "opt/model.hpp"

#include <gtest/gtest.h>

#include "testing/paper_example.hpp"

namespace ccf::opt {
namespace {

using testing::paper_chunk_matrix;

AssignmentProblem problem_for(const data::ChunkMatrix& m) {
  AssignmentProblem p;
  p.matrix = &m;
  return p;
}

TEST(Evaluate, PaperSp1LoadsAndMakespan) {
  const auto m = paper_chunk_matrix();
  const auto p = problem_for(m);
  const auto sp1 = testing::paper_sp1();
  const LoadProfile loads = evaluate(p, sp1);
  // Fig. 2(c): egress p1=3 (key1 tuples), p2=3 (2 of key2 + 1 of key5),
  // p3=1 (key0); ingress p1=3, p2=3, p3=1.
  EXPECT_DOUBLE_EQ(loads.egress[0], 3.0);
  EXPECT_DOUBLE_EQ(loads.egress[1], 3.0);
  EXPECT_DOUBLE_EQ(loads.egress[2], 1.0);
  EXPECT_DOUBLE_EQ(loads.ingress[0], 3.0);
  EXPECT_DOUBLE_EQ(loads.ingress[1], 3.0);
  EXPECT_DOUBLE_EQ(loads.ingress[2], 1.0);
  EXPECT_DOUBLE_EQ(loads.makespan(), testing::kMakespanSp1);
}

TEST(Evaluate, PaperSp2AndSp0Makespans) {
  const auto m = paper_chunk_matrix();
  const auto p = problem_for(m);
  const auto sp2 = testing::paper_sp2();
  EXPECT_DOUBLE_EQ(makespan(p, sp2), testing::kMakespanSp2);
  const auto sp0 = testing::paper_sp0();
  EXPECT_DOUBLE_EQ(makespan(p, sp0), testing::kMakespanSp0);
}

TEST(Traffic, MatchesPaperTupleCounts) {
  const auto m = paper_chunk_matrix();
  const auto p = problem_for(m);
  const auto sp0 = testing::paper_sp0();
  const auto sp1 = testing::paper_sp1();
  const auto sp2 = testing::paper_sp2();
  EXPECT_DOUBLE_EQ(traffic(p, sp0), testing::kTrafficSp0);
  EXPECT_DOUBLE_EQ(traffic(p, sp1), testing::kTrafficSp1);
  EXPECT_DOUBLE_EQ(traffic(p, sp2), testing::kTrafficSp2);
}

TEST(Evaluate, InitialLoadsAreAdded) {
  const auto m = paper_chunk_matrix();
  AssignmentProblem p;
  p.matrix = &m;
  p.initial_egress = {10.0, 0.0, 0.0};
  p.initial_ingress = {0.0, 0.0, 20.0};
  const auto sp1 = testing::paper_sp1();
  const LoadProfile loads = evaluate(p, sp1);
  EXPECT_DOUBLE_EQ(loads.egress[0], 13.0);
  EXPECT_DOUBLE_EQ(loads.ingress[2], 21.0);
  EXPECT_DOUBLE_EQ(loads.makespan(), 21.0);
}

TEST(Evaluate, ValidationErrors) {
  AssignmentProblem p;  // null matrix
  std::vector<std::uint32_t> dest;
  EXPECT_THROW(evaluate(p, dest), std::invalid_argument);

  const auto m = paper_chunk_matrix();
  p.matrix = &m;
  dest = {0, 0};  // wrong size
  EXPECT_THROW(evaluate(p, dest), std::invalid_argument);

  dest = testing::paper_sp1();
  dest[0] = 99;  // out of range destination
  EXPECT_THROW(evaluate(p, dest), std::invalid_argument);

  p.initial_egress = {1.0};  // wrong length
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ToLpString, ContainsModelStructure) {
  const auto m = paper_chunk_matrix();
  const auto p = problem_for(m);
  const std::string lp = to_lp_string(p);
  EXPECT_NE(lp.find("Minimize"), std::string::npos);
  EXPECT_NE(lp.find("obj: T"), std::string::npos);
  EXPECT_NE(lp.find("egress_0:"), std::string::npos);
  EXPECT_NE(lp.find("ingress_2:"), std::string::npos);
  EXPECT_NE(lp.find("assign_5:"), std::string::npos);
  EXPECT_NE(lp.find("Binary"), std::string::npos);
  EXPECT_NE(lp.find("x_0_0"), std::string::npos);
  EXPECT_NE(lp.find("End"), std::string::npos);
  // One assignment row per partition.
  std::size_t count = 0, pos = 0;
  while ((pos = lp.find("assign_", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, testing::kPaperPartitions);
}

TEST(GreedyReference, BeatsHashAndMiniOnPaperExample) {
  const auto m = paper_chunk_matrix();
  const auto p = problem_for(m);
  const Assignment greedy = greedy_reference(p);
  EXPECT_EQ(greedy.size(), m.partitions());
  const double t = makespan(p, greedy);
  // Algorithm 1 must find a plan at least as good as SP1 here.
  EXPECT_LE(t, testing::kMakespanSp1);
  EXPECT_DOUBLE_EQ(t, testing::kOptimalMakespan);
}

TEST(GreedyReference, RespectsInitialLoads) {
  // Seed node 1 with huge initial ingress: the greedy must avoid sending
  // partition 1's mass there... it can still keep node1's own chunk local.
  const auto m = paper_chunk_matrix();
  AssignmentProblem p;
  p.matrix = &m;
  p.initial_ingress = {0.0, 100.0, 0.0};
  const Assignment greedy = greedy_reference(p);
  // Whatever the placement, the makespan cannot drop below the initial load,
  // and placing anything *into* node 1 would only raise it.
  EXPECT_DOUBLE_EQ(makespan(p, greedy), 100.0);
}

}  // namespace
}  // namespace ccf::opt
