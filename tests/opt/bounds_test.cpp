#include "opt/bounds.hpp"

#include <gtest/gtest.h>

#include "opt/bnb.hpp"
#include "testing/paper_example.hpp"
#include "util/rng.hpp"

namespace ccf::opt {
namespace {

TEST(MinPartitionTraffic, LeavesLargestChunkLocal) {
  const auto m = testing::paper_chunk_matrix();
  EXPECT_DOUBLE_EQ(min_partition_traffic(m, 0), 1.0);  // key 0: 4 - 3
  EXPECT_DOUBLE_EQ(min_partition_traffic(m, 1), 3.0);  // key 1: 9 - 6
  EXPECT_DOUBLE_EQ(min_partition_traffic(m, 2), 1.0);  // key 2: 3 - 2
  EXPECT_DOUBLE_EQ(min_partition_traffic(m, 5), 1.0);  // key 5: 3 - 2
  EXPECT_DOUBLE_EQ(min_partition_traffic(m, 3), 0.0);  // empty
}

TEST(RootLowerBound, PaperExampleIsBetweenSpreadAndOptimum) {
  const auto m = testing::paper_chunk_matrix();
  AssignmentProblem p;
  p.matrix = &m;
  const double lb = root_lower_bound(p);
  // Unavoidable traffic 6 over 3 nodes -> spread bound 2; largest single
  // unavoidable move 3 (partition 1). Bound = 3 == the true optimum here.
  EXPECT_DOUBLE_EQ(lb, 3.0);
  EXPECT_LE(lb, testing::kOptimalMakespan);
}

TEST(RootLowerBound, AccountsForInitialLoads) {
  const auto m = testing::paper_chunk_matrix();
  AssignmentProblem p;
  p.matrix = &m;
  p.initial_egress = {50.0, 0.0, 0.0};
  EXPECT_GE(root_lower_bound(p), 50.0);
}

TEST(RootLowerBound, NeverExceedsExactOptimum) {
  // Random instances: lb <= T*(found by exact solver).
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    util::Pcg32 rng(util::derive_seed(seed, 8), 8);
    data::ChunkMatrix m(6, 3);
    for (std::size_t k = 0; k < 6; ++k) {
      for (std::size_t i = 0; i < 3; ++i) {
        m.set(k, i, rng.uniform(0.0, 10.0));
      }
    }
    AssignmentProblem p;
    p.matrix = &m;
    const auto exact = solve_exact(p);
    ASSERT_TRUE(exact.optimal);
    EXPECT_LE(root_lower_bound(p), exact.T + 1e-9) << "seed " << seed;
  }
}

TEST(PartialLowerBound, AtLeastCurrentT) {
  const auto m = testing::paper_chunk_matrix();
  AssignmentProblem p;
  p.matrix = &m;
  const std::vector<double> egress = {5.0, 0.0, 0.0};
  const std::vector<double> ingress = {0.0, 2.0, 0.0};
  const std::vector<std::uint32_t> unassigned = {1, 2};
  EXPECT_GE(partial_lower_bound(p, egress, ingress, unassigned, 5.0), 5.0);
}

TEST(PartialLowerBound, GrowsWithUnassignedVolume) {
  const auto m = testing::paper_chunk_matrix();
  AssignmentProblem p;
  p.matrix = &m;
  const std::vector<double> zero(3, 0.0);
  const std::vector<std::uint32_t> none = {};
  const std::vector<std::uint32_t> all = {0, 1, 2, 3, 4, 5};
  EXPECT_LT(partial_lower_bound(p, zero, zero, none, 0.0),
            partial_lower_bound(p, zero, zero, all, 0.0));
  // All partitions unassigned: spread bound = 6 / 3 = 2.
  EXPECT_DOUBLE_EQ(partial_lower_bound(p, zero, zero, all, 0.0), 2.0);
}

}  // namespace
}  // namespace ccf::opt
