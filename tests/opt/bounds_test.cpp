#include "opt/bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "opt/bnb.hpp"
#include "testing/paper_example.hpp"
#include "util/rng.hpp"

namespace ccf::opt {
namespace {

TEST(MinPartitionTraffic, LeavesLargestChunkLocal) {
  const auto m = testing::paper_chunk_matrix();
  EXPECT_DOUBLE_EQ(min_partition_traffic(m, 0), 1.0);  // key 0: 4 - 3
  EXPECT_DOUBLE_EQ(min_partition_traffic(m, 1), 3.0);  // key 1: 9 - 6
  EXPECT_DOUBLE_EQ(min_partition_traffic(m, 2), 1.0);  // key 2: 3 - 2
  EXPECT_DOUBLE_EQ(min_partition_traffic(m, 5), 1.0);  // key 5: 3 - 2
  EXPECT_DOUBLE_EQ(min_partition_traffic(m, 3), 0.0);  // empty
}

TEST(RootLowerBound, PaperExampleIsBetweenSpreadAndOptimum) {
  const auto m = testing::paper_chunk_matrix();
  AssignmentProblem p;
  p.matrix = &m;
  const double lb = root_lower_bound(p);
  // Unavoidable traffic 6 over 3 nodes -> spread bound 2; largest single
  // unavoidable move 3 (partition 1). Bound = 3 == the true optimum here.
  EXPECT_DOUBLE_EQ(lb, 3.0);
  EXPECT_LE(lb, testing::kOptimalMakespan);
}

TEST(RootLowerBound, AccountsForInitialLoads) {
  const auto m = testing::paper_chunk_matrix();
  AssignmentProblem p;
  p.matrix = &m;
  p.initial_egress = {50.0, 0.0, 0.0};
  EXPECT_GE(root_lower_bound(p), 50.0);
}

TEST(RootLowerBound, NeverExceedsExactOptimum) {
  // Random instances: lb <= T*(found by exact solver).
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    util::Pcg32 rng(util::derive_seed(seed, 8), 8);
    data::ChunkMatrix m(6, 3);
    for (std::size_t k = 0; k < 6; ++k) {
      for (std::size_t i = 0; i < 3; ++i) {
        m.set(k, i, rng.uniform(0.0, 10.0));
      }
    }
    AssignmentProblem p;
    p.matrix = &m;
    const auto exact = solve_exact(p);
    ASSERT_TRUE(exact.optimal);
    EXPECT_LE(root_lower_bound(p), exact.T + 1e-9) << "seed " << seed;
  }
}

TEST(PartialLowerBound, AtLeastCurrentT) {
  const auto m = testing::paper_chunk_matrix();
  AssignmentProblem p;
  p.matrix = &m;
  const std::vector<double> egress = {5.0, 0.0, 0.0};
  const std::vector<double> ingress = {0.0, 2.0, 0.0};
  const std::vector<std::uint32_t> unassigned = {1, 2};
  EXPECT_GE(partial_lower_bound(p, egress, ingress, unassigned, 5.0), 5.0);
}

TEST(PartialLowerBound, GrowsWithUnassignedVolume) {
  const auto m = testing::paper_chunk_matrix();
  AssignmentProblem p;
  p.matrix = &m;
  const std::vector<double> zero(3, 0.0);
  const std::vector<std::uint32_t> none = {};
  const std::vector<std::uint32_t> all = {0, 1, 2, 3, 4, 5};
  EXPECT_LT(partial_lower_bound(p, zero, zero, none, 0.0),
            partial_lower_bound(p, zero, zero, all, 0.0));
  // All partitions unassigned: spread bound = 6 / 3 = 2.
  EXPECT_DOUBLE_EQ(partial_lower_bound(p, zero, zero, all, 0.0), 2.0);
}

TEST(Top2Kernel, TracksMaxSecondAndArgmax) {
  const std::vector<double> v = {3.0, 7.0, 5.0, 7.0};
  const Top2 t = top2(v);
  EXPECT_EQ(t.arg_max, 1u);  // first of the tied maxima
  EXPECT_DOUBLE_EQ(t.max, 7.0);
  EXPECT_DOUBLE_EQ(t.second, 7.0);

  const std::vector<double> base = {1.0, 2.0, 3.0};
  const std::vector<double> add = {5.0, 0.0, 1.0};
  const Top2 s = top2_sum(base, add);  // sums: 6, 2, 4
  EXPECT_EQ(s.arg_max, 0u);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
  EXPECT_DOUBLE_EQ(s.second, 4.0);
}

TEST(PlacementBottleneck, MatchesNaiveRescan) {
  const auto m = testing::paper_chunk_matrix();
  const std::vector<double> egress = {1.0, 4.0, 2.0};
  const std::vector<double> ingress = {3.0, 0.5, 2.5};
  for (std::size_t k = 0; k < m.partitions(); ++k) {
    const auto row = m.partition_row(k);
    const double sk = m.partition_total(k);
    const Top2 eg = top2_sum(egress, row);
    const Top2 in = top2(ingress);
    for (std::uint32_t d = 0; d < 3; ++d) {
      double naive = 0.0;
      for (std::size_t i = 0; i < 3; ++i) {
        naive = std::max(naive, i == d ? egress[i] : egress[i] + row[i]);
        naive = std::max(naive,
                         i == d ? ingress[i] + (sk - row[d]) : ingress[i]);
      }
      EXPECT_DOUBLE_EQ(placement_bottleneck(eg, in, egress[d], ingress[d], sk,
                                            row[d], d),
                       naive)
          << "partition " << k << " dest " << d;
    }
  }
}

TEST(WaterFillLevel, KnownValues) {
  std::vector<double> scratch;
  // Empty ports: volume spreads evenly.
  EXPECT_DOUBLE_EQ(water_fill_level(std::vector<double>{0, 0, 0}, 6.0, scratch),
                   2.0);
  // One port sticks out above the final level and contributes no capacity:
  // 6 bytes over loads {0, 0, 9} fill the two low ports to 3, not (6+9)/3 = 5.
  EXPECT_DOUBLE_EQ(water_fill_level(std::vector<double>{0, 0, 9}, 6.0, scratch),
                   3.0);
  // Volume large enough to submerge everything: exact average.
  EXPECT_DOUBLE_EQ(water_fill_level(std::vector<double>{0, 0, 9}, 100.0,
                                    scratch),
                   (100.0 + 9.0) / 3.0);
  // Zero volume: the level is the water already over the lowest port.
  EXPECT_DOUBLE_EQ(water_fill_level(std::vector<double>{4, 7, 9}, 0.0, scratch),
                   4.0);
}

TEST(WaterFillLevel, DominatesAveragingGivenTheProfileMax) {
  // The packing bound is used as max(current_T, level) with current_T >= the
  // largest committed load; that combination dominates the averaging bound
  // (total + volume) / n. (The level alone does not: a port far above the
  // final water line holds mass the average counts but the water line
  // ignores.)
  util::Pcg32 rng(util::derive_seed(3, 4), 4);
  std::vector<double> scratch;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> loads(3 + trial % 4);
    double total = 0.0, max_load = 0.0;
    for (double& v : loads) {
      v = rng.uniform(0.0, 50.0);
      total += v;
      max_load = std::max(max_load, v);
    }
    const double volume = rng.uniform(0.0, 100.0);
    const double avg = (total + volume) / static_cast<double>(loads.size());
    const double level = water_fill_level(loads, volume, scratch);
    EXPECT_GE(std::max(level, max_load) + 1e-9, avg);
  }
}

// The strong infeasibility tests may only ever prune suboptimal subtrees:
// at the root with T slightly above the exact optimum they must report
// "feasible", or the solver would prune its own optimum away.
TEST(InfeasibleBelow, NeverCutsTheOptimum) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    util::Pcg32 rng(util::derive_seed(seed, 29), 29);
    const std::size_t n = 2 + seed % 3;
    const std::size_t parts = 5 + seed % 3;
    data::ChunkMatrix m(parts, n);
    for (std::size_t k = 0; k < parts; ++k) {
      for (std::size_t i = 0; i < n; ++i) {
        m.set(k, i, std::floor(rng.uniform(0.0, 20.0)));
      }
    }
    AssignmentProblem p;
    p.matrix = &m;
    const auto exact = solve_exact(p);
    ASSERT_TRUE(exact.optimal);

    const PruneStatics statics = make_prune_statics(p);
    std::vector<std::uint32_t> order(parts);
    std::vector<std::size_t> pos(parts);
    for (std::size_t k = 0; k < parts; ++k) order[k] = (std::uint32_t)k;
    for (std::size_t k = 0; k < parts; ++k) pos[order[k]] = k;
    std::vector<double> egress(n, 0.0), ingress(n, 0.0);
    std::vector<double> future_chunks(n, 0.0);
    double future_rsecond = 0.0;
    for (std::size_t k = 0; k < parts; ++k) {
      future_rsecond += statics.rsecond[k];
      for (std::size_t i = 0; i < n; ++i) future_chunks[i] += m.h(k, i);
    }
    PrunePrefix v;
    v.egress = egress;
    v.ingress = ingress;
    v.order = order;
    v.depth = 0;
    v.pos = pos;
    v.future_rsecond = future_rsecond;
    v.future_chunks = future_chunks;
    // A completion with makespan exactly T* exists, so "below T* + eps" must
    // be feasible for every valid necessary condition.
    EXPECT_FALSE(infeasible_below(p, statics, v, exact.T * (1.0 + 1e-9) + 1.0))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace ccf::opt
