#include "opt/bnb.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "testing/paper_example.hpp"
#include "util/rng.hpp"

namespace ccf::opt {
namespace {

// Exhaustive reference: try every destination combination.
double brute_force_optimum(const AssignmentProblem& p) {
  const std::size_t n = p.nodes();
  const std::size_t parts = p.partitions();
  std::vector<std::uint32_t> dest(parts, 0);
  double best = std::numeric_limits<double>::infinity();
  std::size_t combos = 1;
  for (std::size_t k = 0; k < parts; ++k) combos *= n;
  for (std::size_t code = 0; code < combos; ++code) {
    std::size_t c = code;
    for (std::size_t k = 0; k < parts; ++k) {
      dest[k] = static_cast<std::uint32_t>(c % n);
      c /= n;
    }
    best = std::min(best, makespan(p, dest));
  }
  return best;
}

TEST(SolveExact, PaperExampleOptimumIsThree) {
  const auto m = testing::paper_chunk_matrix();
  AssignmentProblem p;
  p.matrix = &m;
  const BnbResult r = solve_exact(p);
  EXPECT_TRUE(r.optimal);
  EXPECT_DOUBLE_EQ(r.T, testing::kOptimalMakespan);
  EXPECT_DOUBLE_EQ(makespan(p, r.dest), r.T);
}

TEST(SolveExact, MatchesBruteForceOnRandomInstances) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    util::Pcg32 rng(util::derive_seed(seed, 17), 17);
    const std::size_t n = 2 + seed % 3;   // 2..4 nodes
    const std::size_t parts = 4 + seed % 3;  // 4..6 partitions
    data::ChunkMatrix m(parts, n);
    for (std::size_t k = 0; k < parts; ++k) {
      for (std::size_t i = 0; i < n; ++i) {
        m.set(k, i, std::floor(rng.uniform(0.0, 20.0)));
      }
    }
    AssignmentProblem p;
    p.matrix = &m;
    const BnbResult r = solve_exact(p);
    ASSERT_TRUE(r.optimal) << "seed " << seed;
    EXPECT_NEAR(r.T, brute_force_optimum(p), 1e-9) << "seed " << seed;
  }
}

TEST(SolveExact, HandlesInitialLoads) {
  const auto m = testing::paper_chunk_matrix();
  AssignmentProblem p;
  p.matrix = &m;
  p.initial_ingress = {0.0, 4.0, 0.0};  // node 1 pre-loaded
  const BnbResult r = solve_exact(p);
  ASSERT_TRUE(r.optimal);
  EXPECT_DOUBLE_EQ(r.T, makespan(p, r.dest));
  // With 4 bytes already entering node 1 the old optimum (3) is infeasible.
  EXPECT_GE(r.T, 4.0);
  // Brute force agrees.
  EXPECT_NEAR(r.T, brute_force_optimum(p), 1e-9);
}

TEST(SolveExact, WarmStartAccepted) {
  const auto m = testing::paper_chunk_matrix();
  AssignmentProblem p;
  p.matrix = &m;
  BnbOptions opts;
  opts.initial = testing::paper_sp0();  // suboptimal warm start
  const BnbResult r = solve_exact(p, opts);
  EXPECT_TRUE(r.optimal);
  EXPECT_DOUBLE_EQ(r.T, testing::kOptimalMakespan);
}

TEST(SolveExact, BadWarmStartThrows) {
  const auto m = testing::paper_chunk_matrix();
  AssignmentProblem p;
  p.matrix = &m;
  BnbOptions opts;
  opts.initial = Assignment{0, 1};  // wrong length
  EXPECT_THROW(solve_exact(p, opts), std::invalid_argument);
}

TEST(SolveExact, NodeLimitFlagsNonOptimal) {
  // A bigger random instance with a 1-node budget cannot finish.
  util::Pcg32 rng(3, 3);
  data::ChunkMatrix m(12, 5);
  for (std::size_t k = 0; k < 12; ++k) {
    for (std::size_t i = 0; i < 5; ++i) m.set(k, i, rng.uniform(1.0, 9.0));
  }
  AssignmentProblem p;
  p.matrix = &m;
  BnbOptions opts;
  opts.max_nodes = 1;
  const BnbResult r = solve_exact(p, opts);
  EXPECT_FALSE(r.optimal);
  // Still returns the (greedy) incumbent, a valid assignment.
  EXPECT_EQ(r.dest.size(), m.partitions());
  EXPECT_DOUBLE_EQ(r.T, makespan(p, r.dest));
}

TEST(SolveExact, NeverWorseThanGreedyIncumbent) {
  for (std::uint64_t seed = 20; seed < 28; ++seed) {
    util::Pcg32 rng(util::derive_seed(seed, 18), 18);
    data::ChunkMatrix m(8, 3);
    for (std::size_t k = 0; k < 8; ++k) {
      for (std::size_t i = 0; i < 3; ++i) m.set(k, i, rng.uniform(0.0, 15.0));
    }
    AssignmentProblem p;
    p.matrix = &m;
    const double greedy_T = makespan(p, greedy_reference(p));
    const BnbResult r = solve_exact(p);
    EXPECT_LE(r.T, greedy_T + 1e-9) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ccf::opt
