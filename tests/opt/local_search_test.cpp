#include "opt/local_search.hpp"

#include <gtest/gtest.h>

#include "opt/bnb.hpp"
#include "testing/paper_example.hpp"
#include "util/rng.hpp"

namespace ccf::opt {
namespace {

TEST(Refine, NeverIncreasesMakespan) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    util::Pcg32 rng(util::derive_seed(seed, 31), 31);
    data::ChunkMatrix m(20, 4);
    for (std::size_t k = 0; k < 20; ++k) {
      for (std::size_t i = 0; i < 4; ++i) m.set(k, i, rng.uniform(0.0, 50.0));
    }
    AssignmentProblem p;
    p.matrix = &m;
    Assignment dest(20);
    for (auto& d : dest) d = rng.bounded(4);
    const double before = makespan(p, dest);
    const LocalSearchResult r = refine(p, dest);
    EXPECT_LE(r.final_T, before + 1e-9) << "seed " << seed;
    EXPECT_DOUBLE_EQ(makespan(p, dest), r.final_T);
    EXPECT_DOUBLE_EQ(r.initial_T, before);
  }
}

TEST(Refine, ImprovesAwfulAssignment) {
  // Everything dumped on node 0: local search must spread the load.
  const auto m = testing::paper_chunk_matrix();
  AssignmentProblem p;
  p.matrix = &m;
  Assignment dest(m.partitions(), 0);  // key1's 6 tuples flood node 0
  const double before = makespan(p, dest);
  ASSERT_GE(before, 9.0);  // ingress of node 0 = 1 + 6 + 2 + 3 = 12... >= 9
  const LocalSearchResult r = refine(p, dest);
  EXPECT_LT(r.final_T, before);
  EXPECT_GT(r.moves, 0u);
}

TEST(Refine, FixedPointOnOptimal) {
  const auto m = testing::paper_chunk_matrix();
  AssignmentProblem p;
  p.matrix = &m;
  Assignment dest = testing::paper_sp1();  // already optimal (T = 3)
  const LocalSearchResult r = refine(p, dest);
  EXPECT_DOUBLE_EQ(r.final_T, testing::kOptimalMakespan);
  EXPECT_EQ(dest, testing::paper_sp1());  // untouched
}

TEST(Refine, ReachesOptimumFromSp2) {
  // SP2 (T = 4) relocates key 2 -> optimal SP1-quality plan (T = 3).
  const auto m = testing::paper_chunk_matrix();
  AssignmentProblem p;
  p.matrix = &m;
  Assignment dest = testing::paper_sp2();
  const LocalSearchResult r = refine(p, dest);
  EXPECT_DOUBLE_EQ(r.final_T, testing::kOptimalMakespan);
}

TEST(Refine, RespectsRoundLimit) {
  util::Pcg32 rng(7, 7);
  data::ChunkMatrix m(30, 5);
  for (std::size_t k = 0; k < 30; ++k) {
    for (std::size_t i = 0; i < 5; ++i) m.set(k, i, rng.uniform(0.0, 10.0));
  }
  AssignmentProblem p;
  p.matrix = &m;
  Assignment dest(30, 0);
  LocalSearchOptions opts;
  opts.max_rounds = 1;
  const LocalSearchResult r = refine(p, dest, opts);
  EXPECT_EQ(r.rounds, 1u);
}

TEST(Refine, CloseToExactOnSmallRandomInstances) {
  // Greedy + local search should land within 15% of the proven optimum.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    util::Pcg32 rng(util::derive_seed(seed, 32), 32);
    data::ChunkMatrix m(8, 3);
    for (std::size_t k = 0; k < 8; ++k) {
      for (std::size_t i = 0; i < 3; ++i) m.set(k, i, rng.uniform(1.0, 20.0));
    }
    AssignmentProblem p;
    p.matrix = &m;
    Assignment dest = greedy_reference(p);
    refine(p, dest);
    const BnbResult exact = solve_exact(p);
    ASSERT_TRUE(exact.optimal);
    EXPECT_LE(makespan(p, dest), exact.T * 1.15 + 1e-9) << "seed " << seed;
  }
}

TEST(Refine, SizeMismatchThrows) {
  const auto m = testing::paper_chunk_matrix();
  AssignmentProblem p;
  p.matrix = &m;
  Assignment dest = {0, 1};
  EXPECT_THROW(refine(p, dest), std::invalid_argument);
}

}  // namespace
}  // namespace ccf::opt
