// Parallel-solver equivalence suite (also the tsan_smoke target: build with
// -DCCF_SANITIZE=thread and run `ctest -L tsan_smoke` to put the shared
// incumbent, worker pool, and GRASP multi-start under ThreadSanitizer).
#include "opt/bnb.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "data/workload.hpp"
#include "join/schedulers.hpp"
#include "opt/local_search.hpp"

namespace ccf::opt {
namespace {

data::Workload make_workload(std::size_t nodes, std::size_t partitions,
                             std::uint64_t seed) {
  data::WorkloadSpec spec;
  spec.nodes = nodes;
  spec.partitions = partitions;
  spec.customer_bytes = 1e6;
  spec.orders_bytes = 1e7;
  spec.zipf_theta = 0.8;
  spec.skew = 0.0;
  spec.align_zipf_ranks = false;
  spec.seed = seed;
  return data::generate_workload(spec);
}

// ---------------------------------------------------------------------------
// Parallel vs reference equivalence over seeds x sizes x thread counts.
// ---------------------------------------------------------------------------

struct EquivCase {
  std::uint64_t seed;
  std::size_t nodes;
  std::size_t partitions;
  std::size_t threads;
};

class ParallelEquivalence : public ::testing::TestWithParam<EquivCase> {};

TEST_P(ParallelEquivalence, ProvenTMatchesReference) {
  const EquivCase c = GetParam();
  const auto w = make_workload(c.nodes, c.partitions, c.seed);
  AssignmentProblem problem;
  problem.matrix = &w.matrix;

  BnbOptions ref_opts;
  ref_opts.mode = BnbMode::kReference;
  const BnbResult ref = solve_exact(problem, ref_opts);
  ASSERT_TRUE(ref.optimal) << "reference failed to prove; pick smaller case";

  BnbOptions par_opts;
  par_opts.mode = BnbMode::kParallel;
  par_opts.threads = c.threads;
  const BnbResult par = solve_exact(problem, par_opts);
  ASSERT_TRUE(par.optimal);
  EXPECT_NEAR(par.T, ref.T, 1e-9 * (1.0 + ref.T));
  // The returned assignment must actually realize the claimed makespan.
  EXPECT_NEAR(makespan(problem, par.dest), par.T, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsSizesThreads, ParallelEquivalence,
    ::testing::Values(EquivCase{7, 4, 10, 1}, EquivCase{7, 4, 10, 4},
                      EquivCase{8, 4, 10, 2}, EquivCase{9, 4, 10, 8},
                      EquivCase{7, 5, 12, 1}, EquivCase{7, 5, 12, 8},
                      EquivCase{8, 5, 12, 4}, EquivCase{9, 5, 12, 2},
                      EquivCase{10, 3, 14, 8}, EquivCase{11, 6, 10, 4}),
    [](const ::testing::TestParamInfo<EquivCase>& param_info) {
      return "seed" + std::to_string(param_info.param.seed) + "_n" +
             std::to_string(param_info.param.nodes) + "_p" +
             std::to_string(param_info.param.partitions) + "_t" +
             std::to_string(param_info.param.threads);
    });

// ---------------------------------------------------------------------------
// Abort semantics
// ---------------------------------------------------------------------------

TEST(ParallelAbort, TimeoutFlagsNonOptimal) {
  const auto w = make_workload(8, 40, 13);  // far beyond any 0-second proof
  AssignmentProblem problem;
  problem.matrix = &w.matrix;
  BnbOptions opts;
  opts.mode = BnbMode::kParallel;
  opts.threads = 4;
  opts.time_limit_s = 0.0;
  const BnbResult r = solve_exact(problem, opts);
  EXPECT_FALSE(r.optimal);
  // Even on timeout the incumbent is a full, consistent assignment.
  ASSERT_EQ(r.dest.size(), w.matrix.partitions());
  EXPECT_NEAR(makespan(problem, r.dest), r.T, 1e-9);
}

TEST(ParallelAbort, NodeLimitFlagsNonOptimal) {
  const auto w = make_workload(6, 20, 13);
  AssignmentProblem problem;
  problem.matrix = &w.matrix;
  BnbOptions opts;
  opts.mode = BnbMode::kParallel;
  opts.threads = 2;
  opts.max_nodes = 1;
  const BnbResult r = solve_exact(problem, opts);
  EXPECT_FALSE(r.optimal);
  EXPECT_NEAR(makespan(problem, r.dest), r.T, 1e-9);
}

// ---------------------------------------------------------------------------
// Portfolio scheduler guarantees
// ---------------------------------------------------------------------------

TEST(Portfolio, NeverWorseThanCcfLs) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto w = make_workload(6, 40, seed);
    AssignmentProblem problem;
    problem.matrix = &w.matrix;
    const auto ls = join::make_scheduler("ccf-ls")->schedule(problem);
    const auto pf = join::make_scheduler("ccf-portfolio")->schedule(problem);
    EXPECT_LE(makespan(problem, pf), makespan(problem, ls) + 1e-9)
        << "seed " << seed;
  }
}

TEST(Portfolio, GraspResultIndependentOfThreadCount) {
  const auto w = make_workload(6, 40, 21);
  AssignmentProblem problem;
  problem.matrix = &w.matrix;
  GraspOptions base;
  base.starts = 12;
  base.seed = 5;
  GraspResult first;
  bool have_first = false;
  for (std::size_t threads : {1, 2, 4, 8}) {
    GraspOptions o = base;
    o.threads = threads;
    const GraspResult r = grasp(problem, o);
    EXPECT_NEAR(makespan(problem, r.dest), r.T, 1e-9);
    if (!have_first) {
      first = r;
      have_first = true;
      continue;
    }
    EXPECT_DOUBLE_EQ(r.T, first.T) << "threads " << threads;
    EXPECT_EQ(r.best_start, first.best_start) << "threads " << threads;
    EXPECT_EQ(r.dest, first.dest) << "threads " << threads;
  }
}

TEST(Portfolio, WarmStartBoundsTheParallelSolverIncumbent) {
  // Even when the search aborts immediately, the result can never be worse
  // than the GRASP warm start, which is never worse than ccf-ls.
  const auto w = make_workload(7, 30, 3);
  AssignmentProblem problem;
  problem.matrix = &w.matrix;
  BnbOptions opts;
  opts.mode = BnbMode::kParallel;
  opts.threads = 2;
  opts.time_limit_s = 0.0;
  const BnbResult r = solve_exact(problem, opts);
  const auto ls = join::make_scheduler("ccf-ls")->schedule(problem);
  EXPECT_LE(r.T, makespan(problem, ls) + 1e-9);
}

}  // namespace
}  // namespace ccf::opt
