#include "data/tpch.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ccf::data {
namespace {

TpchConfig small_config() {
  TpchConfig cfg;
  cfg.scale_factor = 0.01;  // 1500 customers, 15000 orders
  cfg.nodes = 4;
  cfg.zipf_theta = 0.8;
  cfg.seed = 7;
  return cfg;
}

TEST(TpchConfig, RowCountsMatchSpec) {
  TpchConfig cfg;
  cfg.scale_factor = 600.0;  // the paper's setting
  EXPECT_EQ(cfg.customer_rows(), 90'000'000u);
  EXPECT_EQ(cfg.orders_rows(), 900'000'000u);
}

TEST(GenerateCustomer, OneTuplePerKey) {
  const auto cfg = small_config();
  const auto rel = generate_customer(cfg);
  EXPECT_EQ(rel.tuple_count(), cfg.customer_rows());
  std::set<std::uint64_t> keys;
  for (std::size_t node = 0; node < rel.node_count(); ++node) {
    for (const Tuple& t : rel.shard(node).tuples()) {
      EXPECT_TRUE(keys.insert(t.key).second) << "duplicate key " << t.key;
      EXPECT_GE(t.key, 1u);
      EXPECT_LE(t.key, cfg.customer_rows());
      EXPECT_EQ(t.payload_bytes, cfg.payload_bytes);
    }
  }
  EXPECT_EQ(keys.size(), cfg.customer_rows());
}

TEST(GenerateOrders, KeysInCustomerDomain) {
  const auto cfg = small_config();
  const auto rel = generate_orders(cfg);
  EXPECT_EQ(rel.tuple_count(), cfg.orders_rows());
  for (std::size_t node = 0; node < rel.node_count(); ++node) {
    for (const Tuple& t : rel.shard(node).tuples()) {
      EXPECT_GE(t.key, 1u);
      EXPECT_LE(t.key, cfg.customer_rows());
    }
  }
}

TEST(GenerateOrders, TotalBytesMatchPayload) {
  const auto cfg = small_config();
  const auto rel = generate_orders(cfg);
  EXPECT_EQ(rel.total_bytes(),
            static_cast<std::uint64_t>(cfg.orders_rows()) * cfg.payload_bytes);
}

TEST(Generators, AreDeterministic) {
  const auto cfg = small_config();
  const auto a = generate_orders(cfg);
  const auto b = generate_orders(cfg);
  ASSERT_EQ(a.node_count(), b.node_count());
  for (std::size_t node = 0; node < a.node_count(); ++node) {
    EXPECT_EQ(a.shard(node).tuples(), b.shard(node).tuples());
  }
}

TEST(Generators, DifferentSeedsDiffer) {
  auto cfg = small_config();
  const auto a = generate_orders(cfg);
  cfg.seed = 8;
  const auto b = generate_orders(cfg);
  bool any_diff = false;
  for (std::size_t node = 0; node < a.node_count() && !any_diff; ++node) {
    any_diff = a.shard(node).tuples() != b.shard(node).tuples();
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generators, AlignedZipfConcentratesOnNodeZero) {
  auto cfg = small_config();
  cfg.zipf_theta = 1.0;
  const auto rel = generate_orders(cfg);
  // Node 0 (rank 1) must hold strictly more than the last node.
  EXPECT_GT(rel.shard(0).size(), rel.shard(cfg.nodes - 1).size());
  // And roughly the zipf share: w_0 = 1/H_4(1.0) = 0.48.
  const double share = static_cast<double>(rel.shard(0).size()) /
                       static_cast<double>(rel.tuple_count());
  // (ratio of counts; both casts above keep -Wconversion quiet)
  EXPECT_NEAR(share, 0.48, 0.05);
}

TEST(Generators, ThetaZeroIsBalanced) {
  auto cfg = small_config();
  cfg.zipf_theta = 0.0;
  const auto rel = generate_orders(cfg);
  const double expected = static_cast<double>(rel.tuple_count()) /
                          static_cast<double>(cfg.nodes);
  for (std::size_t node = 0; node < cfg.nodes; ++node) {
    EXPECT_NEAR(static_cast<double>(rel.shard(node).size()), expected,
                0.1 * expected);
  }
}

TEST(Generators, RejectInvalidConfig) {
  TpchConfig cfg;
  cfg.nodes = 0;
  EXPECT_THROW(generate_customer(cfg), std::invalid_argument);
  cfg = TpchConfig{};
  cfg.scale_factor = 0.0;
  EXPECT_THROW(generate_orders(cfg), std::invalid_argument);
  cfg.scale_factor = 1e-9;  // rounds to zero customers
  EXPECT_THROW(generate_customer(cfg), std::invalid_argument);
}

TEST(GenerateOrders, SparseCustomersSkipKeysDivisibleByThree) {
  auto cfg = small_config();
  cfg.sparse_customers = true;
  const auto rel = generate_orders(cfg);
  EXPECT_EQ(rel.tuple_count(), cfg.orders_rows());
  for (std::size_t node = 0; node < rel.node_count(); ++node) {
    for (const Tuple& t : rel.shard(node).tuples()) {
      EXPECT_NE(t.key % 3, 0u) << "key " << t.key;
      EXPECT_GE(t.key, 1u);
      EXPECT_LE(t.key, cfg.customer_rows());
    }
  }
}

TEST(ExpectedJoinCardinality, EqualsOrdersRows) {
  const auto cfg = small_config();
  EXPECT_EQ(expected_join_cardinality(cfg), cfg.orders_rows());
}

}  // namespace
}  // namespace ccf::data
