#include "data/partitioner.hpp"

#include <gtest/gtest.h>

#include "data/tpch.hpp"

namespace ccf::data {
namespace {

TEST(PartitionOf, IsKeyModP) {
  EXPECT_EQ(partition_of(0, 5), 0u);
  EXPECT_EQ(partition_of(7, 5), 2u);
  EXPECT_EQ(partition_of(5, 5), 0u);
  EXPECT_EQ(partition_of(1, 6), 1u);  // paper Fig. 1 keys
  EXPECT_EQ(partition_of(5, 6), 5u);
}

TEST(BuildChunkMatrix, ConservesBytes) {
  TpchConfig cfg;
  cfg.scale_factor = 0.01;
  cfg.nodes = 3;
  const auto rel = generate_orders(cfg);
  const auto m = build_chunk_matrix(rel, 45);
  EXPECT_EQ(m.partitions(), 45u);
  EXPECT_EQ(m.nodes(), 3u);
  EXPECT_DOUBLE_EQ(m.total(), static_cast<double>(rel.total_bytes()));
}

TEST(BuildChunkMatrix, NodeTotalsMatchShards) {
  TpchConfig cfg;
  cfg.scale_factor = 0.01;
  cfg.nodes = 4;
  const auto rel = generate_orders(cfg);
  const auto m = build_chunk_matrix(rel, 60);
  for (std::size_t node = 0; node < cfg.nodes; ++node) {
    EXPECT_DOUBLE_EQ(m.node_total(node),
                     static_cast<double>(rel.shard(node).bytes()));
  }
}

TEST(BuildChunkMatrix, TuplesLandInKeyModPRow) {
  DistributedRelation rel("r", 2);
  rel.shard(0).add(Tuple{10, 100});  // partition 10 % 4 = 2
  rel.shard(1).add(Tuple{5, 200});   // partition 1
  const auto m = build_chunk_matrix(rel, 4);
  EXPECT_DOUBLE_EQ(m.h(2, 0), 100.0);
  EXPECT_DOUBLE_EQ(m.h(1, 1), 200.0);
  EXPECT_DOUBLE_EQ(m.h(0, 0), 0.0);
}

TEST(BuildChunkMatrix, TwoRelationsSumPerPartition) {
  DistributedRelation r("R", 2), s("S", 2);
  r.shard(0).add(Tuple{3, 100});
  s.shard(0).add(Tuple{3, 50});
  s.shard(1).add(Tuple{3, 25});
  const auto m = build_chunk_matrix(r, s, 5);
  EXPECT_DOUBLE_EQ(m.h(3, 0), 150.0);
  EXPECT_DOUBLE_EQ(m.h(3, 1), 25.0);
  EXPECT_DOUBLE_EQ(m.total(), 175.0);
}

TEST(BuildChunkMatrix, MismatchedClustersThrow) {
  DistributedRelation r("R", 2), s("S", 3);
  EXPECT_THROW(build_chunk_matrix(r, s, 5), std::invalid_argument);
}

}  // namespace
}  // namespace ccf::data
