#include "data/io.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "net/fabric.hpp"
#include "net/io.hpp"

namespace ccf {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

TEST(ChunkMatrixIo, ParsesWithHeaderAndInfersShape) {
  const auto path = temp_path("chunks1.csv");
  write_file(path, "partition,node,bytes\n0,0,10\n0,2,5\n3,1,7.5\n");
  const auto m = data::chunk_matrix_from_csv(path);
  EXPECT_EQ(m.partitions(), 4u);
  EXPECT_EQ(m.nodes(), 3u);
  EXPECT_DOUBLE_EQ(m.h(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(m.h(0, 2), 5.0);
  EXPECT_DOUBLE_EQ(m.h(3, 1), 7.5);
}

TEST(ChunkMatrixIo, HeaderlessAndExplicitShape) {
  const auto path = temp_path("chunks2.csv");
  write_file(path, "1,1,4\n");
  const auto m = data::chunk_matrix_from_csv(path, 5, 3);
  EXPECT_EQ(m.partitions(), 5u);
  EXPECT_EQ(m.nodes(), 3u);
  EXPECT_DOUBLE_EQ(m.h(1, 1), 4.0);
}

TEST(ChunkMatrixIo, RepeatedEntriesAccumulate) {
  const auto path = temp_path("chunks3.csv");
  write_file(path, "0,0,1\n0,0,2\n");
  const auto m = data::chunk_matrix_from_csv(path);
  EXPECT_DOUBLE_EQ(m.h(0, 0), 3.0);
}

TEST(ChunkMatrixIo, Errors) {
  const auto path = temp_path("chunks4.csv");
  write_file(path, "0,0\n");
  EXPECT_THROW(data::chunk_matrix_from_csv(path), std::invalid_argument);
  write_file(path, "0,0,-5\n");
  EXPECT_THROW(data::chunk_matrix_from_csv(path), std::invalid_argument);
  write_file(path, "9,0,1\n");
  EXPECT_THROW(data::chunk_matrix_from_csv(path, 5, 3), std::invalid_argument);
}

TEST(ChunkMatrixIo, RoundTrip) {
  data::ChunkMatrix m(3, 2);
  m.set(0, 0, 1.25);
  m.set(2, 1, 9.0);
  const auto path = temp_path("chunks5.csv");
  data::chunk_matrix_to_csv(m, path);
  const auto back = data::chunk_matrix_from_csv(path, 3, 2);
  EXPECT_EQ(back, m);
}

TEST(FlowMatrixIo, ParsesAndInfersNodes) {
  const auto path = temp_path("flows1.csv");
  write_file(path, "src,dst,bytes\n0,1,100\n2,0,50\n");
  const auto m = net::flow_matrix_from_csv(path);
  EXPECT_EQ(m.nodes(), 3u);
  EXPECT_DOUBLE_EQ(m.volume(0, 1), 100.0);
  EXPECT_DOUBLE_EQ(m.volume(2, 0), 50.0);
  EXPECT_DOUBLE_EQ(m.traffic(), 150.0);
}

TEST(FlowMatrixIo, Errors) {
  const auto path = temp_path("flows2.csv");
  write_file(path, "0,0,5\n");
  EXPECT_THROW(net::flow_matrix_from_csv(path), std::invalid_argument);
  write_file(path, "0,1,-5\n");
  EXPECT_THROW(net::flow_matrix_from_csv(path), std::invalid_argument);
  write_file(path, "0,7,5\n");
  EXPECT_THROW(net::flow_matrix_from_csv(path, 4), std::invalid_argument);
}

TEST(FlowMatrixIo, RoundTrip) {
  net::FlowMatrix m(3);
  m.set(0, 1, 10.0);
  m.set(1, 2, 0.5);
  const auto path = temp_path("flows3.csv");
  net::flow_matrix_to_csv(m, path);
  const auto back = net::flow_matrix_from_csv(path, 3);
  EXPECT_EQ(back, m);
}

TEST(FaultScheduleIo, ParsesEveryKindWithHeader) {
  const auto path = temp_path("faults1.csv");
  write_file(path,
             "time,kind,id,side,factor\n"
             "1,degrade-link,3,,0.5\n"
             "2,fail-port,1,ingress,\n"
             "3,slow-node,0,,0.25\n"
             "4,restore-port,1,ingress,\n"
             "5,restore-link,3,,\n"
             "6,restore-node,0,,\n"
             "7,degrade-port,2,egress,0.75\n");
  const auto s = net::fault_schedule_from_csv(path);
  ASSERT_EQ(s.size(), 7u);
  EXPECT_EQ(s.events()[0].kind, net::FaultKind::kDegradeLink);
  EXPECT_EQ(s.events()[0].link, 3u);
  EXPECT_DOUBLE_EQ(s.events()[0].factor, 0.5);
  EXPECT_EQ(s.events()[1].kind, net::FaultKind::kDegradePort);
  EXPECT_EQ(s.events()[1].side, net::PortSide::kIngress);
  EXPECT_DOUBLE_EQ(s.events()[1].factor, 0.0);
  EXPECT_EQ(s.events()[6].side, net::PortSide::kEgress);
  EXPECT_NO_THROW(s.validate(net::Fabric(4, 1.0)));
}

TEST(FaultScheduleIo, ShortRowsWithoutOptionalCellsParse) {
  const auto path = temp_path("faults2.csv");
  write_file(path, "2,fail-port,1\n5,restore-node,1\n");
  const auto s = net::fault_schedule_from_csv(path);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.events()[0].side, net::PortSide::kBoth);
}

TEST(FaultScheduleIo, Errors) {
  const auto path = temp_path("faults3.csv");
  write_file(path, "1,frobnicate,0,,0.5\n");
  EXPECT_THROW(net::fault_schedule_from_csv(path), std::invalid_argument);
  write_file(path, "1,degrade-link,0\n");  // degrade without a factor
  EXPECT_THROW(net::fault_schedule_from_csv(path), std::invalid_argument);
  write_file(path, "1,fail-port,0,sideways,\n");
  EXPECT_THROW(net::fault_schedule_from_csv(path), std::invalid_argument);
}

}  // namespace
}  // namespace ccf
