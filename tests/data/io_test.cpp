#include "data/io.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "net/io.hpp"

namespace ccf {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

TEST(ChunkMatrixIo, ParsesWithHeaderAndInfersShape) {
  const auto path = temp_path("chunks1.csv");
  write_file(path, "partition,node,bytes\n0,0,10\n0,2,5\n3,1,7.5\n");
  const auto m = data::chunk_matrix_from_csv(path);
  EXPECT_EQ(m.partitions(), 4u);
  EXPECT_EQ(m.nodes(), 3u);
  EXPECT_DOUBLE_EQ(m.h(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(m.h(0, 2), 5.0);
  EXPECT_DOUBLE_EQ(m.h(3, 1), 7.5);
}

TEST(ChunkMatrixIo, HeaderlessAndExplicitShape) {
  const auto path = temp_path("chunks2.csv");
  write_file(path, "1,1,4\n");
  const auto m = data::chunk_matrix_from_csv(path, 5, 3);
  EXPECT_EQ(m.partitions(), 5u);
  EXPECT_EQ(m.nodes(), 3u);
  EXPECT_DOUBLE_EQ(m.h(1, 1), 4.0);
}

TEST(ChunkMatrixIo, RepeatedEntriesAccumulate) {
  const auto path = temp_path("chunks3.csv");
  write_file(path, "0,0,1\n0,0,2\n");
  const auto m = data::chunk_matrix_from_csv(path);
  EXPECT_DOUBLE_EQ(m.h(0, 0), 3.0);
}

TEST(ChunkMatrixIo, Errors) {
  const auto path = temp_path("chunks4.csv");
  write_file(path, "0,0\n");
  EXPECT_THROW(data::chunk_matrix_from_csv(path), std::invalid_argument);
  write_file(path, "0,0,-5\n");
  EXPECT_THROW(data::chunk_matrix_from_csv(path), std::invalid_argument);
  write_file(path, "9,0,1\n");
  EXPECT_THROW(data::chunk_matrix_from_csv(path, 5, 3), std::invalid_argument);
}

TEST(ChunkMatrixIo, RoundTrip) {
  data::ChunkMatrix m(3, 2);
  m.set(0, 0, 1.25);
  m.set(2, 1, 9.0);
  const auto path = temp_path("chunks5.csv");
  data::chunk_matrix_to_csv(m, path);
  const auto back = data::chunk_matrix_from_csv(path, 3, 2);
  EXPECT_EQ(back, m);
}

TEST(FlowMatrixIo, ParsesAndInfersNodes) {
  const auto path = temp_path("flows1.csv");
  write_file(path, "src,dst,bytes\n0,1,100\n2,0,50\n");
  const auto m = net::flow_matrix_from_csv(path);
  EXPECT_EQ(m.nodes(), 3u);
  EXPECT_DOUBLE_EQ(m.volume(0, 1), 100.0);
  EXPECT_DOUBLE_EQ(m.volume(2, 0), 50.0);
  EXPECT_DOUBLE_EQ(m.traffic(), 150.0);
}

TEST(FlowMatrixIo, Errors) {
  const auto path = temp_path("flows2.csv");
  write_file(path, "0,0,5\n");
  EXPECT_THROW(net::flow_matrix_from_csv(path), std::invalid_argument);
  write_file(path, "0,1,-5\n");
  EXPECT_THROW(net::flow_matrix_from_csv(path), std::invalid_argument);
  write_file(path, "0,7,5\n");
  EXPECT_THROW(net::flow_matrix_from_csv(path, 4), std::invalid_argument);
}

TEST(FlowMatrixIo, RoundTrip) {
  net::FlowMatrix m(3);
  m.set(0, 1, 10.0);
  m.set(1, 2, 0.5);
  const auto path = temp_path("flows3.csv");
  net::flow_matrix_to_csv(m, path);
  const auto back = net::flow_matrix_from_csv(path, 3);
  EXPECT_EQ(back, m);
}

}  // namespace
}  // namespace ccf
