#include "data/chunk_matrix.hpp"

#include <gtest/gtest.h>

namespace ccf::data {
namespace {

ChunkMatrix sample() {
  // 2 partitions x 3 nodes.
  ChunkMatrix m(2, 3);
  m.set(0, 0, 3.0);
  m.set(0, 1, 0.0);
  m.set(0, 2, 1.0);
  m.set(1, 0, 3.0);
  m.set(1, 1, 6.0);
  m.set(1, 2, 0.0);
  return m;
}

TEST(ChunkMatrix, RejectsEmptyShapes) {
  EXPECT_THROW(ChunkMatrix(0, 3), std::invalid_argument);
  EXPECT_THROW(ChunkMatrix(3, 0), std::invalid_argument);
}

TEST(ChunkMatrix, AccessorsRoundTrip) {
  auto m = sample();
  EXPECT_DOUBLE_EQ(m.h(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.h(1, 1), 6.0);
  m.add(1, 1, 2.0);
  EXPECT_DOUBLE_EQ(m.h(1, 1), 8.0);
  EXPECT_EQ(m.partitions(), 2u);
  EXPECT_EQ(m.nodes(), 3u);
}

TEST(ChunkMatrix, PartitionAggregates) {
  const auto m = sample();
  EXPECT_DOUBLE_EQ(m.partition_total(0), 4.0);
  EXPECT_DOUBLE_EQ(m.partition_total(1), 9.0);
  EXPECT_DOUBLE_EQ(m.partition_max(0), 3.0);
  EXPECT_DOUBLE_EQ(m.partition_max(1), 6.0);
  EXPECT_EQ(m.partition_argmax(0), 0u);
  EXPECT_EQ(m.partition_argmax(1), 1u);
}

TEST(ChunkMatrix, ArgmaxTiesGoToLowestIndex) {
  ChunkMatrix m(1, 3);
  m.set(0, 0, 5.0);
  m.set(0, 1, 5.0);
  EXPECT_EQ(m.partition_argmax(0), 0u);
}

TEST(ChunkMatrix, NodeAndGrandTotals) {
  const auto m = sample();
  EXPECT_DOUBLE_EQ(m.node_total(0), 6.0);
  EXPECT_DOUBLE_EQ(m.node_total(1), 6.0);
  EXPECT_DOUBLE_EQ(m.node_total(2), 1.0);
  EXPECT_DOUBLE_EQ(m.total(), 13.0);
}

TEST(ChunkMatrix, PartitionRowIsContiguousView) {
  const auto m = sample();
  const auto row = m.partition_row(1);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_DOUBLE_EQ(row[0], 3.0);
  EXPECT_DOUBLE_EQ(row[1], 6.0);
  EXPECT_DOUBLE_EQ(row[2], 0.0);
}

TEST(ChunkMatrix, EqualityAndDiff) {
  const auto a = sample();
  auto b = sample();
  EXPECT_EQ(a, b);
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 0.0);
  b.add(0, 2, 0.5);
  EXPECT_NE(a, b);
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 0.5);
}

TEST(ChunkMatrix, DiffShapeMismatchThrows) {
  ChunkMatrix a(2, 3), b(3, 2);
  EXPECT_THROW(max_abs_diff(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace ccf::data
