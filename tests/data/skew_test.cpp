#include "data/skew.hpp"

#include <gtest/gtest.h>

#include "data/tpch.hpp"

namespace ccf::data {
namespace {

DistributedRelation make_orders() {
  TpchConfig cfg;
  cfg.scale_factor = 0.02;  // 30000 orders
  cfg.nodes = 5;
  cfg.seed = 3;
  return generate_orders(cfg);
}

TEST(InjectSkew, FractionZeroRewritesNothing) {
  auto rel = make_orders();
  util::Pcg32 rng(1, 1);
  const auto before = count_key(rel, 1);
  EXPECT_EQ(inject_skew(rel, 0.0, 1, rng), 0u);
  EXPECT_EQ(count_key(rel, 1), before);
}

TEST(InjectSkew, FractionOneRewritesEverything) {
  auto rel = make_orders();
  util::Pcg32 rng(1, 1);
  const auto total = rel.tuple_count();
  EXPECT_EQ(inject_skew(rel, 1.0, 42, rng), total);
  EXPECT_EQ(count_key(rel, 42), total);
}

TEST(InjectSkew, FractionApproximatelyRespected) {
  auto rel = make_orders();
  util::Pcg32 rng(9, 2);
  const auto total = rel.tuple_count();
  const auto rewritten = inject_skew(rel, 0.2, 1, rng);
  // Binomial(30000, 0.2): 5 sigma ≈ 346.
  EXPECT_NEAR(static_cast<double>(rewritten), 0.2 * static_cast<double>(total),
              350.0);
  EXPECT_GE(count_key(rel, 1), rewritten);  // plus pre-existing key-1 tuples
}

TEST(InjectSkew, OnlyKeysChangeNotPayloadOrPlacement) {
  auto rel = make_orders();
  const auto bytes_before = rel.total_bytes();
  std::vector<std::size_t> sizes_before;
  for (std::size_t i = 0; i < rel.node_count(); ++i) {
    sizes_before.push_back(rel.shard(i).size());
  }
  util::Pcg32 rng(4, 4);
  inject_skew(rel, 0.3, 1, rng);
  EXPECT_EQ(rel.total_bytes(), bytes_before);
  for (std::size_t i = 0; i < rel.node_count(); ++i) {
    EXPECT_EQ(rel.shard(i).size(), sizes_before[i]);
  }
}

TEST(InjectSkew, RejectsBadFraction) {
  auto rel = make_orders();
  util::Pcg32 rng(1, 1);
  EXPECT_THROW(inject_skew(rel, -0.1, 1, rng), std::invalid_argument);
  EXPECT_THROW(inject_skew(rel, 1.1, 1, rng), std::invalid_argument);
}

TEST(CountKey, CountsAcrossShards) {
  DistributedRelation rel("r", 2);
  rel.shard(0).add(Tuple{7, 1});
  rel.shard(0).add(Tuple{8, 1});
  rel.shard(1).add(Tuple{7, 1});
  EXPECT_EQ(count_key(rel, 7), 2u);
  EXPECT_EQ(count_key(rel, 9), 0u);
}

}  // namespace
}  // namespace ccf::data
