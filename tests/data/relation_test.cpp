#include "data/relation.hpp"

#include <gtest/gtest.h>

namespace ccf::data {
namespace {

TEST(Shard, TracksBytesAndSize) {
  Shard s;
  EXPECT_TRUE(s.empty());
  s.add(Tuple{1, 100});
  s.add(Tuple{2, 250});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.bytes(), 350u);
  EXPECT_FALSE(s.empty());
}

TEST(Shard, RecountAfterMutation) {
  Shard s;
  s.add(Tuple{1, 100});
  s.add(Tuple{2, 200});
  s.mutable_tuples()[0].payload_bytes = 50;
  s.recount();
  EXPECT_EQ(s.bytes(), 250u);
}

TEST(DistributedRelation, RejectsZeroNodes) {
  EXPECT_THROW(DistributedRelation("r", 0), std::invalid_argument);
}

TEST(DistributedRelation, AggregatesAcrossShards) {
  DistributedRelation rel("r", 3);
  rel.shard(0).add(Tuple{1, 10});
  rel.shard(1).add(Tuple{2, 20});
  rel.shard(1).add(Tuple{3, 30});
  EXPECT_EQ(rel.node_count(), 3u);
  EXPECT_EQ(rel.tuple_count(), 3u);
  EXPECT_EQ(rel.total_bytes(), 60u);
  EXPECT_EQ(rel.name(), "r");
  EXPECT_TRUE(rel.shard(2).empty());
}

TEST(DistributedRelation, ShardAccessOutOfRangeThrows) {
  DistributedRelation rel("r", 2);
  EXPECT_THROW(rel.shard(2), std::out_of_range);
}

TEST(Tuple, EqualityIsMemberwise) {
  EXPECT_EQ((Tuple{1, 2}), (Tuple{1, 2}));
  EXPECT_NE((Tuple{1, 2}), (Tuple{1, 3}));
  EXPECT_NE((Tuple{1, 2}), (Tuple{2, 2}));
}

}  // namespace
}  // namespace ccf::data
