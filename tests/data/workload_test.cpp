#include "data/workload.hpp"

#include <gtest/gtest.h>

#include "data/partitioner.hpp"
#include "data/skew.hpp"
#include "data/tpch.hpp"
#include "util/zipf.hpp"

namespace ccf::data {
namespace {

WorkloadSpec small_spec() {
  WorkloadSpec s;
  s.nodes = 8;
  s.partitions = 120;
  s.customer_bytes = 9e6;
  s.orders_bytes = 90e6;
  s.zipf_theta = 0.8;
  s.skew = 0.2;
  s.seed = 11;
  return s;
}

TEST(PaperDefault, MatchesPaperSetup) {
  const auto s = WorkloadSpec::paper_default(500);
  EXPECT_EQ(s.nodes, 500u);
  EXPECT_EQ(s.partitions, 7500u);  // p = 15 n
  EXPECT_DOUBLE_EQ(s.customer_bytes, 90e9);
  EXPECT_DOUBLE_EQ(s.orders_bytes, 900e9);
  EXPECT_DOUBLE_EQ(s.zipf_theta, 0.8);
  EXPECT_DOUBLE_EQ(s.skew, 0.2);
  EXPECT_NEAR(s.total_bytes(), 990e9, 1.0);  // ~1 TB input
}

TEST(GenerateWorkload, ConservesTotalBytes) {
  const auto w = generate_workload(small_spec());
  EXPECT_NEAR(w.matrix.total(), small_spec().total_bytes(), 1.0);
}

TEST(GenerateWorkload, ShapeMatchesSpec) {
  const auto w = generate_workload(small_spec());
  EXPECT_EQ(w.matrix.partitions(), 120u);
  EXPECT_EQ(w.matrix.nodes(), 8u);
}

TEST(GenerateWorkload, AlignedRanksPutLargestChunkOnNodeZero) {
  auto spec = small_spec();
  spec.skew = 0.0;  // skew mass also lands on node 0; disable to isolate
  const auto w = generate_workload(spec);
  for (std::size_t k = 0; k < w.matrix.partitions(); ++k) {
    EXPECT_EQ(w.matrix.partition_argmax(k), 0u) << "partition " << k;
  }
}

TEST(GenerateWorkload, PartitionSplitFollowsZipfWeights) {
  auto spec = small_spec();
  spec.skew = 0.0;
  spec.jitter = 0.0;
  const auto w = generate_workload(spec);
  const auto weights = util::zipf_weights(spec.nodes, spec.zipf_theta);
  for (std::size_t k = 0; k < 5; ++k) {
    const double total = w.matrix.partition_total(k);
    for (std::size_t i = 0; i < spec.nodes; ++i) {
      EXPECT_NEAR(w.matrix.h(k, i), total * weights[i], total * 1e-9);
    }
  }
}

TEST(GenerateWorkload, UnalignedRanksSpreadMaxima) {
  auto spec = small_spec();
  spec.skew = 0.0;
  spec.align_zipf_ranks = false;
  const auto w = generate_workload(spec);
  std::size_t on_node0 = 0;
  for (std::size_t k = 0; k < w.matrix.partitions(); ++k) {
    if (w.matrix.partition_argmax(k) == 0) ++on_node0;
  }
  // With random permutations ~1/8 of maxima land on node 0, not all of them.
  EXPECT_LT(on_node0, w.matrix.partitions() / 2);
  EXPECT_NEAR(w.matrix.total(), spec.total_bytes(), 1.0);
}

TEST(GenerateWorkload, SkewInfoDescribesHotPartition) {
  const auto spec = small_spec();
  const auto w = generate_workload(spec);
  EXPECT_TRUE(w.skew.present);
  EXPECT_EQ(w.skew.hot_key, 1u);
  EXPECT_EQ(w.skew.hot_partition, 1u % spec.partitions);
  EXPECT_NEAR(w.skew.skewed_bytes_total(), spec.orders_bytes * spec.skew, 1.0);
  EXPECT_DOUBLE_EQ(w.skew.broadcast_bytes, spec.payload_bytes);
}

TEST(GenerateWorkload, HotPartitionCarriesTheSkewMass) {
  const auto spec = small_spec();
  const auto w = generate_workload(spec);
  const double hot = w.matrix.partition_total(w.skew.hot_partition);
  const double avg =
      (w.matrix.total() - hot) / static_cast<double>(spec.partitions - 1);
  // 20% of orders in one partition of 120 makes it vastly larger than average.
  EXPECT_GT(hot, 10.0 * avg);
}

TEST(GenerateWorkload, NoSkewMeansNoSkewInfo) {
  auto spec = small_spec();
  spec.skew = 0.0;
  const auto w = generate_workload(spec);
  EXPECT_FALSE(w.skew.present);
}

TEST(GenerateWorkload, DeterministicPerSeed) {
  const auto a = generate_workload(small_spec());
  const auto b = generate_workload(small_spec());
  EXPECT_EQ(a.matrix, b.matrix);
  auto spec = small_spec();
  spec.seed = 12;
  const auto c = generate_workload(spec);
  EXPECT_NE(a.matrix, c.matrix);
}

TEST(GenerateWorkload, RejectsBadSpecs) {
  auto spec = small_spec();
  spec.nodes = 0;
  EXPECT_THROW(generate_workload(spec), std::invalid_argument);
  spec = small_spec();
  spec.skew = 1.5;
  EXPECT_THROW(generate_workload(spec), std::invalid_argument);
}

TEST(WorkloadFromTuples, MatchesDirectCounts) {
  TpchConfig cfg;
  cfg.scale_factor = 0.01;
  cfg.nodes = 4;
  cfg.seed = 5;
  auto customer = generate_customer(cfg);
  auto orders = generate_orders(cfg);
  util::Pcg32 rng(21, 6);
  inject_skew(orders, 0.25, 1, rng);

  const auto w = workload_from_tuples(customer, orders, 60, 1);
  EXPECT_TRUE(w.skew.present);
  EXPECT_EQ(w.skew.hot_partition, 1u);
  EXPECT_NEAR(w.spec.skew, 0.25, 0.02);
  // Skewed bytes per node must equal hot-key orders bytes per node.
  for (std::size_t node = 0; node < cfg.nodes; ++node) {
    double hot_bytes = 0.0;
    for (const Tuple& t : orders.shard(node).tuples()) {
      if (t.key == 1) hot_bytes += t.payload_bytes;
    }
    EXPECT_DOUBLE_EQ(w.skew.skewed_bytes_per_node[node], hot_bytes);
  }
  // One customer tuple carries key 1.
  EXPECT_DOUBLE_EQ(w.skew.broadcast_bytes, cfg.payload_bytes);
  // Matrix is the partitioned union of both relations.
  const auto expected = build_chunk_matrix(customer, orders, 60);
  EXPECT_EQ(w.matrix, expected);
}

TEST(WorkloadFromTuples, AnalyticAndTupleNodeTotalsAgree) {
  // The tuple generator and analytic generator share distributions, so
  // per-node byte totals should agree within sampling noise.
  TpchConfig cfg;
  cfg.scale_factor = 0.05;  // 7500 customers, 75000 orders
  cfg.nodes = 6;
  cfg.zipf_theta = 0.8;
  cfg.seed = 9;
  const auto customer = generate_customer(cfg);
  const auto orders = generate_orders(cfg);
  const auto tuple_w = workload_from_tuples(customer, orders, 90, 1);

  WorkloadSpec spec;
  spec.nodes = 6;
  spec.partitions = 90;
  spec.customer_bytes = static_cast<double>(customer.total_bytes());
  spec.orders_bytes = static_cast<double>(orders.total_bytes());
  spec.zipf_theta = 0.8;
  spec.skew = 0.0;
  const auto analytic_w = generate_workload(spec);

  EXPECT_NEAR(tuple_w.matrix.total(), analytic_w.matrix.total(), 1.0);
  for (std::size_t i = 0; i < 6; ++i) {
    const double a = tuple_w.matrix.node_total(i);
    const double b = analytic_w.matrix.node_total(i);
    EXPECT_NEAR(a, b, 0.05 * analytic_w.matrix.total()) << "node " << i;
  }
}

TEST(WorkloadFromTuples, MismatchedClustersThrow) {
  DistributedRelation r("R", 2), s("S", 3);
  EXPECT_THROW(workload_from_tuples(r, s, 10, 1), std::invalid_argument);
}

}  // namespace
}  // namespace ccf::data
