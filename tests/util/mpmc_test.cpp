// util::MpmcQueue — the Service's submission fabric. The suite pins the
// single-threaded ring semantics (FIFO, capacity, batch pop) and races
// producers/consumers for the lock-free paths; it carries the tsan_smoke
// label so the sanitizer build exercises the CAS protocol for real.
#include "util/mpmc.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

namespace ccf::util {
namespace {

TEST(MpmcQueue, RoundsCapacityToPowerOfTwo) {
  EXPECT_EQ(MpmcQueue<int>(0).capacity(), 2u);
  EXPECT_EQ(MpmcQueue<int>(5).capacity(), 8u);
  EXPECT_EQ(MpmcQueue<int>(64).capacity(), 64u);
}

TEST(MpmcQueue, FifoSingleThread) {
  MpmcQueue<int> q(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.try_push(int(i)));
  EXPECT_FALSE(q.try_push(99));  // full
  int v = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.try_pop(v));  // empty
}

TEST(MpmcQueue, WrapsAroundManyTimes) {
  MpmcQueue<int> q(4);
  int v = -1;
  for (int round = 0; round < 1000; ++round) {
    EXPECT_TRUE(q.try_push(int(round)));
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, round);
  }
  EXPECT_EQ(q.size_approx(), 0u);
}

TEST(MpmcQueue, PopBatchDrainsInOrder) {
  MpmcQueue<int> q(16);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.try_push(int(i)));
  std::vector<int> out;
  EXPECT_EQ(q.pop_batch(out, 4), 4u);
  EXPECT_EQ(q.pop_batch(out, 100), 6u);
  ASSERT_EQ(out.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[i], i);
}

TEST(MpmcQueue, MovesOwnershipThrough) {
  MpmcQueue<std::unique_ptr<int>> q(4);
  EXPECT_TRUE(q.try_push(std::make_unique<int>(41)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(q.try_pop(out));
  ASSERT_TRUE(out);
  EXPECT_EQ(*out, 41);
}

// Many producers, one consumer: every value arrives exactly once, and each
// producer's own sequence arrives in order (the property the Service's
// deterministic replay rests on).
TEST(MpmcQueue, ManyProducersSingleConsumerDeliversAllInProducerOrder) {
  constexpr std::uint32_t kProducers = 4;
  constexpr std::uint32_t kPerProducer = 5000;
  MpmcQueue<std::uint64_t> q(256);

  std::vector<std::uint64_t> got;
  got.reserve(kProducers * kPerProducer);
  std::thread consumer([&] {
    std::uint64_t v;
    while (got.size() < kProducers * kPerProducer) {
      if (q.try_pop(v)) {
        got.push_back(v);
      } else {
        std::this_thread::yield();
      }
    }
  });

  {
    std::vector<std::jthread> producers;
    for (std::uint32_t p = 0; p < kProducers; ++p) {
      producers.emplace_back([&q, p] {
        for (std::uint32_t i = 0; i < kPerProducer; ++i) {
          std::uint64_t v = (std::uint64_t(p) << 32) | i;
          while (!q.try_push(std::move(v))) std::this_thread::yield();
        }
      });
    }
  }
  consumer.join();

  ASSERT_EQ(got.size(), std::size_t{kProducers} * kPerProducer);
  std::vector<std::uint32_t> next(kProducers, 0);
  for (const std::uint64_t v : got) {
    const auto p = static_cast<std::uint32_t>(v >> 32);
    const auto i = static_cast<std::uint32_t>(v & 0xffffffffu);
    ASSERT_LT(p, kProducers);
    EXPECT_EQ(i, next[p]) << "producer " << p << " reordered";
    next[p] = i + 1;
  }
}

// Many producers AND many consumers: exactly-once delivery of the multiset.
TEST(MpmcQueue, ManyProducersManyConsumersDeliverExactlyOnce) {
  constexpr std::uint32_t kProducers = 3;
  constexpr std::uint32_t kConsumers = 3;
  constexpr std::uint32_t kPerProducer = 4000;
  MpmcQueue<std::uint64_t> q(128);

  std::vector<std::vector<std::uint64_t>> per_consumer(kConsumers);
  std::atomic<std::uint32_t> remaining{kProducers * kPerProducer};
  {
    std::vector<std::jthread> threads;
    for (std::uint32_t c = 0; c < kConsumers; ++c) {
      threads.emplace_back([&, c] {
        std::uint64_t v;
        while (remaining.load(std::memory_order_relaxed) > 0) {
          if (q.try_pop(v)) {
            per_consumer[c].push_back(v);
            remaining.fetch_sub(1, std::memory_order_relaxed);
          } else {
            std::this_thread::yield();
          }
        }
      });
    }
    for (std::uint32_t p = 0; p < kProducers; ++p) {
      threads.emplace_back([&q, p] {
        for (std::uint32_t i = 0; i < kPerProducer; ++i) {
          std::uint64_t v = (std::uint64_t(p) << 32) | i;
          while (!q.try_push(std::move(v))) std::this_thread::yield();
        }
      });
    }
  }

  std::vector<std::uint64_t> all;
  for (const auto& part : per_consumer) {
    all.insert(all.end(), part.begin(), part.end());
  }
  ASSERT_EQ(all.size(), std::size_t{kProducers} * kPerProducer);
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(all[std::size_t{p} * kPerProducer], std::uint64_t(p) << 32);
  }
}

}  // namespace
}  // namespace ccf::util
