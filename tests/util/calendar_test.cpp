#include "util/calendar.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace ccf::util {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<std::pair<double, CalendarQueue::Payload>> drain_all(
    CalendarQueue& q) {
  std::vector<std::pair<double, CalendarQueue::Payload>> out;
  q.pop_due(kInf, [&](double t, CalendarQueue::Payload p) {
    out.emplace_back(t, p);
  });
  return out;
}

TEST(CalendarQueue, DeliversInTimeThenPushOrder) {
  // Random times (with deliberate duplicates) against a stable sort of the
  // push sequence — the (time, push order) contract the simulator relies on
  // to reproduce its former (arrival, id) cursor order.
  Pcg32 rng(42, 0);
  CalendarQueue q;
  q.prepare(0.0, 100.0, 256);
  std::vector<std::pair<double, CalendarQueue::Payload>> ref;
  for (std::uint32_t i = 0; i < 500; ++i) {
    const double t = std::floor(rng.uniform(0.0, 32.0)) * 3.0;  // many ties
    q.push(t, i);
    ref.emplace_back(t, i);
  }
  std::stable_sort(ref.begin(), ref.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  EXPECT_EQ(drain_all(q), ref);
}

TEST(CalendarQueue, PopDueStopsAtNow) {
  CalendarQueue q;
  q.prepare(0.0, 10.0, 8);
  q.push(1.0, 1);
  q.push(5.0, 5);
  q.push(9.0, 9);
  std::vector<CalendarQueue::Payload> got;
  q.pop_due(5.0, [&](double, CalendarQueue::Payload p) { got.push_back(p); });
  EXPECT_EQ(got, (std::vector<CalendarQueue::Payload>{1, 5}));
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.next_time(), 9.0);
}

TEST(CalendarQueue, NextTimeOnEmptyIsInfinity) {
  CalendarQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), kInf);
  q.push(3.0, 0);
  EXPECT_EQ(q.next_time(), 3.0);
  drain_all(q);
  EXPECT_EQ(q.next_time(), kInf);
}

TEST(CalendarQueue, PushDuringDrainIsDeliveredSameCall) {
  CalendarQueue q;
  q.prepare(0.0, 10.0, 8);
  q.push(1.0, 1);
  std::vector<CalendarQueue::Payload> got;
  q.pop_due(10.0, [&](double, CalendarQueue::Payload p) {
    got.push_back(p);
    if (p == 1) q.push(2.0, 2);   // future, still <= now
    if (p == 2) q.push(0.5, 3);   // past: clamped, delivered next
  });
  EXPECT_EQ(got, (std::vector<CalendarQueue::Payload>{1, 2, 3}));
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, PastPushAfterPartialDrainSurvives) {
  CalendarQueue q;
  q.prepare(0.0, 100.0, 16);
  q.push(10.0, 1);
  q.push(50.0, 2);
  std::vector<CalendarQueue::Payload> got;
  q.pop_due(10.0, [&](double, CalendarQueue::Payload p) { got.push_back(p); });
  ASSERT_EQ(got, (std::vector<CalendarQueue::Payload>{1}));
  q.push(3.0, 3);  // before the drain point: must not be lost
  q.pop_due(10.0, [&](double, CalendarQueue::Payload p) { got.push_back(p); });
  EXPECT_EQ(got, (std::vector<CalendarQueue::Payload>{1, 3}));
  q.pop_due(kInf, [&](double, CalendarQueue::Payload p) { got.push_back(p); });
  EXPECT_EQ(got, (std::vector<CalendarQueue::Payload>{1, 3, 2}));
}

TEST(CalendarQueue, OutOfRangeTimesAreClampedNotLost) {
  CalendarQueue q;
  q.prepare(10.0, 20.0, 4);
  q.push(-5.0, 0);   // below origin -> first bucket
  q.push(100.0, 1);  // past horizon -> last bucket
  q.push(15.0, 2);
  const auto all = drain_all(q);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].second, 0u);
  EXPECT_EQ(all[1].second, 2u);
  EXPECT_EQ(all[2].second, 1u);
}

TEST(CalendarQueue, UnpreparedAndDegenerateSpanWork) {
  CalendarQueue unprepared;  // single-bucket layout
  unprepared.push(2.0, 2);
  unprepared.push(1.0, 1);
  auto all = drain_all(unprepared);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].second, 1u);
  EXPECT_EQ(all[1].second, 2u);

  CalendarQueue same_time;
  same_time.prepare(5.0, 5.0, 100);  // zero-width span
  for (std::uint32_t i = 0; i < 10; ++i) same_time.push(5.0, i);
  all = drain_all(same_time);
  ASSERT_EQ(all.size(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(all[i].second, i);
}

TEST(CalendarQueue, PrepareOnNonEmptyThrows) {
  CalendarQueue q;
  q.push(1.0, 0);
  EXPECT_THROW(q.prepare(0.0, 10.0, 4), std::logic_error);
  drain_all(q);
  EXPECT_NO_THROW(q.prepare(0.0, 10.0, 4));  // drained queue may re-prepare
}

TEST(CalendarQueue, RandomizedAgainstStableSortReference) {
  // Interleaved push/pop against a reference priority list, across several
  // bucket layouts (including pathological single-bucket).
  for (const std::size_t expected : {1UL, 7UL, 64UL, 1024UL}) {
    Pcg32 rng(7, expected);
    CalendarQueue q;
    q.prepare(0.0, 50.0, expected);
    std::vector<std::pair<double, CalendarQueue::Payload>> pushed;
    std::vector<std::pair<double, CalendarQueue::Payload>> popped;
    std::uint32_t next_id = 0;
    double now = 0.0;
    for (int step = 0; step < 200; ++step) {
      const int burst = 1 + static_cast<int>(rng.bounded(5));
      for (int b = 0; b < burst; ++b) {
        const double t = rng.uniform(0.0, 60.0);  // some beyond horizon
        q.push(t, next_id);
        pushed.emplace_back(t, next_id);
        ++next_id;
      }
      now += rng.uniform(0.0, 1.0);
      q.pop_due(now, [&](double t, CalendarQueue::Payload p) {
        popped.emplace_back(t, p);
      });
    }
    q.pop_due(kInf, [&](double t, CalendarQueue::Payload p) {
      popped.emplace_back(t, p);
    });
    // Every pushed event delivered exactly once, globally (time, push order).
    // Deliveries must be monotone in time within the run by construction of
    // the reference: compare the full sequences.
    std::stable_sort(pushed.begin(), pushed.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    ASSERT_EQ(popped.size(), pushed.size()) << "layout " << expected;
    // Late pushes into already-drained times deliver after their bucket was
    // passed, so the exact global order can differ there; check the multiset
    // and the per-payload uniqueness plus monotone delivery of on-time events.
    std::vector<std::pair<double, CalendarQueue::Payload>> popped_sorted =
        popped;
    std::stable_sort(popped_sorted.begin(), popped_sorted.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    EXPECT_EQ(popped_sorted, pushed) << "layout " << expected;
  }
}

}  // namespace
}  // namespace ccf::util
