#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace ccf::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(SplitMix64, KnownVector) {
  // Reference value of SplitMix64 with seed 0 (Steele et al. / xoshiro docs).
  SplitMix64 g(0);
  EXPECT_EQ(g(), 0xe220a8397b1dcdafULL);
}

TEST(Pcg32, IsDeterministic) {
  Pcg32 a(99, 5), b(99, 5);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Pcg32, StreamsAreIndependent) {
  Pcg32 a(99, 1), b(99, 2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Pcg32, BoundedStaysInRange) {
  Pcg32 g(7);
  for (std::uint32_t bound : {1u, 2u, 3u, 10u, 1000u, 1u << 31}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(g.bounded(bound), bound);
  }
}

TEST(Pcg32, BoundedOneAlwaysZero) {
  Pcg32 g(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(g.bounded(1), 0u);
}

TEST(Pcg32, BoundedIsRoughlyUniform) {
  Pcg32 g(11);
  constexpr std::uint32_t kBuckets = 10;
  constexpr int kDraws = 100'000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[g.bounded(kBuckets)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 0.05 * kDraws / kBuckets);
  }
}

TEST(Pcg32, Uniform01InHalfOpenRange) {
  Pcg32 g(13);
  for (int i = 0; i < 10'000; ++i) {
    const double u = g.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Pcg32, Uniform01MeanIsHalf) {
  Pcg32 g(17);
  double sum = 0.0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) sum += g.uniform01();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Pcg32, UniformRespectsBounds) {
  Pcg32 g(19);
  for (int i = 0; i < 1000; ++i) {
    const double v = g.uniform(-3.5, 7.25);
    EXPECT_GE(v, -3.5);
    EXPECT_LT(v, 7.25);
  }
}

TEST(Pcg32, UniformIntCoversInclusiveRange) {
  Pcg32 g(23);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = g.uniform_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all 6 values hit
}

TEST(Pcg32, UniformIntSingleton) {
  Pcg32 g(29);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(g.uniform_int(42, 42), 42);
}

TEST(Pcg32, UniformIntLargeSpan) {
  Pcg32 g(31);
  const std::int64_t lo = -5'000'000'000LL, hi = 5'000'000'000LL;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = g.uniform_int(lo, hi);
    EXPECT_GE(v, lo);
    EXPECT_LE(v, hi);
  }
}

TEST(Pcg32, NormalHasExpectedMoments) {
  Pcg32 g(37);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = g.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sum2 / kDraws, 1.0, 0.02);
}

TEST(Pcg32, ForkedGeneratorsDiverge) {
  Pcg32 g(41);
  Pcg32 c1 = g.fork(1);
  Pcg32 c2 = g.fork(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (c1() == c2()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(DeriveSeed, DistinctIndicesDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) seeds.insert(derive_seed(5, i));
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(DeriveSeed, IsDeterministic) {
  EXPECT_EQ(derive_seed(77, 3), derive_seed(77, 3));
  EXPECT_NE(derive_seed(77, 3), derive_seed(78, 3));
}

}  // namespace
}  // namespace ccf::util
