#include "util/log.hpp"

#include <gtest/gtest.h>

namespace ccf::util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, DefaultLevelIsWarn) {
  // The library must stay quiet below WARN unless a binary opts in.
  const LogLevelGuard guard;
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

TEST(Log, SetAndGetRoundTrips) {
  const LogLevelGuard guard;
  for (const LogLevel level : {LogLevel::kDebug, LogLevel::kInfo,
                               LogLevel::kWarn, LogLevel::kError,
                               LogLevel::kOff}) {
    set_log_level(level);
    EXPECT_EQ(log_level(), level);
  }
}

TEST(Log, OrderingSupportsFiltering) {
  EXPECT_LT(LogLevel::kDebug, LogLevel::kInfo);
  EXPECT_LT(LogLevel::kInfo, LogLevel::kWarn);
  EXPECT_LT(LogLevel::kWarn, LogLevel::kError);
  EXPECT_LT(LogLevel::kError, LogLevel::kOff);
}

TEST(Log, VariadicBuilderDoesNotCrashAtAnyLevel) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kOff);  // discard output; exercise the paths
  log(LogLevel::kDebug, "pieces ", 42, " and ", 1.5);
  log(LogLevel::kError, "also fine");
  set_log_level(LogLevel::kDebug);
  // Goes to stderr; the assertion is simply that formatting works.
  log(LogLevel::kDebug, "visible debug line from log_test: n=", 3);
}

}  // namespace
}  // namespace ccf::util
