#include "util/csv_reader.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.hpp"

namespace ccf::util {
namespace {

std::vector<std::vector<std::string>> parse(const std::string& text) {
  std::istringstream in(text);
  return read_csv(in);
}

TEST(ReadCsv, SimpleRows) {
  const auto rows = parse("a,b,c\n1,2,3\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(ReadCsv, MissingTrailingNewline) {
  const auto rows = parse("x,y");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"x", "y"}));
}

TEST(ReadCsv, EmptyCellsPreserved) {
  const auto rows = parse("a,,c\n,,\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"", "", ""}));
}

TEST(ReadCsv, SkipsBlankLines) {
  const auto rows = parse("a\n\nb\n\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "a");
  EXPECT_EQ(rows[1][0], "b");
}

TEST(ReadCsv, QuotedCommasAndQuotes) {
  const auto rows = parse("\"with,comma\",\"with\"\"quote\"\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "with,comma");
  EXPECT_EQ(rows[0][1], "with\"quote");
}

TEST(ReadCsv, QuotedNewline) {
  const auto rows = parse("\"two\nlines\",x\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "two\nlines");
  EXPECT_EQ(rows[0][1], "x");
}

TEST(ReadCsv, ToleratesCrLf) {
  const auto rows = parse("a,b\r\nc,d\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(ReadCsv, RejectsMalformedQuoting) {
  EXPECT_THROW(parse("ab\"cd\n"), std::invalid_argument);
  EXPECT_THROW(parse("\"unterminated\n"), std::invalid_argument);
}

TEST(ReadCsv, RoundTripsWithCsvWriter) {
  const std::string path = ::testing::TempDir() + "/roundtrip.csv";
  {
    CsvWriter w(path);
    w.header({"k", "v"});
    w.row({"plain", "with,comma"});
    w.row({"q\"uote", "multi\nline"});
  }
  const auto rows = read_csv_file(path);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{"plain", "with,comma"}));
  EXPECT_EQ(rows[2], (std::vector<std::string>{"q\"uote", "multi\nline"}));
}

TEST(ReadCsvFile, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/x.csv"), std::runtime_error);
}

}  // namespace
}  // namespace ccf::util
