#include "util/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <new>

namespace ccf::util {
namespace {

TEST(MonotonicArena, AllocationsAreDisjointAndWritable) {
  MonotonicArena arena(256);
  double* a = arena.allocate<double>(10);
  double* b = arena.allocate<double>(10);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  for (int i = 0; i < 10; ++i) {
    a[i] = 1.0 + i;
    b[i] = -1.0 - i;
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a[i], 1.0 + i);
    EXPECT_EQ(b[i], -1.0 - i);
  }
}

TEST(MonotonicArena, RespectsAlignment) {
  MonotonicArena arena(1024);
  arena.allocate<char>(1);
  double* d = arena.allocate<double>(1);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(double), 0u);
  arena.allocate<char>(3);
  std::uint64_t* q = arena.allocate<std::uint64_t>(2);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(q) % alignof(std::uint64_t), 0u);
}

TEST(MonotonicArena, OversizedRequestGetsDedicatedBlock) {
  MonotonicArena arena(64);
  char* big = arena.allocate<char>(1000);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xab, 1000);
  EXPECT_GE(arena.capacity(), 1000u);
}

TEST(MonotonicArena, ResetRecyclesBlocksWithoutFreeing) {
  MonotonicArena arena(128);
  for (int round = 0; round < 3; ++round) {
    arena.allocate<double>(8);
    arena.allocate<double>(8);
    arena.allocate<char>(300);  // forces a second (dedicated) block
    arena.reset();
  }
  const std::size_t cap_after_warmup = arena.capacity();
  arena.allocate<double>(8);
  arena.allocate<double>(8);
  arena.allocate<char>(300);
  // Steady state: the same request pattern fits the kept blocks exactly.
  EXPECT_EQ(arena.capacity(), cap_after_warmup);
}

TEST(MonotonicArena, ReleaseDropsCapacity) {
  MonotonicArena arena(64);
  arena.allocate<double>(100);
  EXPECT_GT(arena.capacity(), 0u);
  arena.release();
  EXPECT_EQ(arena.capacity(), 0u);
}

TEST(MonotonicArena, ZeroCountAllocationIsValid) {
  MonotonicArena arena;
  EXPECT_NE(arena.allocate<double>(0), nullptr);
}

TEST(MonotonicArena, OverAlignedRequestThrows) {
  MonotonicArena arena;
  EXPECT_THROW(arena.allocate_bytes(8, alignof(std::max_align_t) * 2),
               std::bad_alloc);
}

}  // namespace
}  // namespace ccf::util
