#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <utility>
#include <vector>

namespace ccf::util {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 10'000;
  std::vector<std::atomic<int>> hits(kCount);
  parallel_for(kCount, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, ZeroCountIsNoop) {
  bool called = false;
  parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleThreadFallbackIsSequential) {
  std::vector<std::size_t> order;
  parallel_for(5, [&](std::size_t i) { order.push_back(i); }, 1);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, ResultsIndependentOfThreadCount) {
  auto compute = [](std::size_t threads) {
    std::vector<double> out(64, 0.0);
    parallel_for(64, [&](std::size_t i) {
      double acc = 0.0;
      for (std::size_t k = 1; k <= 1000; ++k) {
        acc += 1.0 / static_cast<double>(k + i);
      }
      out[i] = acc;
    }, threads);
    return out;
  };
  EXPECT_EQ(compute(1), compute(4));
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(100,
                   [](std::size_t i) {
                     if (i == 37) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, MoreThreadsThanWorkIsFine) {
  std::atomic<int> sum{0};
  parallel_for(3, [&](std::size_t i) { sum += static_cast<int>(i); }, 64);
  EXPECT_EQ(sum.load(), 3);
}

TEST(ParallelForChunked, CoversEveryIndexExactlyOnce) {
  for (const std::size_t grain : std::vector<std::size_t>{1, 3, 7, 100, 1000}) {
    constexpr std::size_t kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    parallel_for(kCount, grain, [&](std::size_t b, std::size_t e) {
      ASSERT_LT(b, e);
      ASSERT_LE(e, kCount);
      for (std::size_t i = b; i < e; ++i) ++hits[i];
    });
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "grain " << grain << " index " << i;
    }
  }
}

TEST(ParallelForChunked, ChunkBoundariesAreGrainAligned) {
  // Chunk k must cover [k*grain, ...): callers rely on begin/grain as a
  // stable scratch-slot index. Also checks the ragged final chunk.
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  parallel_for(10, 4, [&](std::size_t b, std::size_t e) {
    const std::scoped_lock lock(m);
    chunks.emplace_back(b, e);
  });
  std::sort(chunks.begin(), chunks.end());
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0], (std::pair<std::size_t, std::size_t>{0, 4}));
  EXPECT_EQ(chunks[1], (std::pair<std::size_t, std::size_t>{4, 8}));
  EXPECT_EQ(chunks[2], (std::pair<std::size_t, std::size_t>{8, 10}));
  EXPECT_EQ(parallel_chunk_count(10, 4), 3u);
  EXPECT_EQ(parallel_chunk_count(8, 4), 2u);
  EXPECT_EQ(parallel_chunk_count(0, 4), 0u);
}

TEST(ParallelForChunked, SingleThreadRunsChunksInOrder) {
  std::vector<std::size_t> begins;
  parallel_for(
      9, 2, [&](std::size_t b, std::size_t) { begins.push_back(b); }, 1);
  EXPECT_EQ(begins, (std::vector<std::size_t>{0, 2, 4, 6, 8}));
}

TEST(ParallelForChunked, PropagatesExceptions) {
  EXPECT_THROW(parallel_for(100, 8,
                            [](std::size_t b, std::size_t) {
                              if (b == 32) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST(ParallelForChunked, RejectsZeroGrain) {
  EXPECT_THROW(parallel_for(10, 0, [](std::size_t, std::size_t) {}),
               std::invalid_argument);
}

TEST(ParallelForChunked, ZeroCountIsNoop) {
  bool called = false;
  parallel_for(0, 8, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelReduce, SumsMatchSequentialFold) {
  std::vector<double> v(10'000);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = 1.0 / static_cast<double>(i + 1);
  }
  auto run = [&](std::size_t grain, std::size_t threads) {
    return parallel_reduce(
        v.size(), grain, 0.0,
        [&](std::size_t b, std::size_t e) {
          double s = 0.0;
          for (std::size_t i = b; i < e; ++i) s += v[i];
          return s;
        },
        [](double a, double b) { return a + b; }, threads);
  };
  // Chunks combine in ascending order, so the result is bit-identical for
  // any thread count at a fixed grain.
  const double seq = run(128, 1);
  EXPECT_EQ(run(128, 2), seq);
  EXPECT_EQ(run(128, 8), seq);
  EXPECT_EQ(run(128, 0), seq);
}

TEST(ParallelReduce, MinWithArgIsExactForAnyGrain) {
  // Min over doubles is order-independent, so even the grain must not change
  // the result; the (value, index) combine keeps the smallest index on ties.
  std::vector<double> v(5'000, 7.0);
  v[1234] = 1.5;
  v[4321] = 1.5;
  struct Best {
    double val = 1e300;
    std::size_t idx = 0;
  };
  for (const std::size_t grain : {1UL, 13UL, 512UL, 10'000UL}) {
    const Best best = parallel_reduce(
        v.size(), grain, Best{},
        [&](std::size_t b, std::size_t e) {
          Best acc;
          for (std::size_t i = b; i < e; ++i) {
            if (v[i] < acc.val) acc = Best{v[i], i};
          }
          return acc;
        },
        [](Best a, Best b) { return b.val < a.val ? b : a; });
    EXPECT_EQ(best.val, 1.5) << "grain " << grain;
    EXPECT_EQ(best.idx, 1234u) << "grain " << grain;
  }
}

TEST(ParallelReduce, ZeroCountReturnsIdentity) {
  const int r = parallel_reduce(
      0, 8, 42, [](std::size_t, std::size_t) { return 0; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(r, 42);
}

TEST(ParallelReduce, RejectsZeroGrain) {
  EXPECT_THROW(parallel_reduce(
                   10, 0, 0.0, [](std::size_t, std::size_t) { return 0.0; },
                   [](double a, double b) { return a + b; }),
               std::invalid_argument);
}

TEST(ParallelReduce, PropagatesExceptions) {
  EXPECT_THROW(parallel_reduce(
                   1000, 8, 0.0,
                   [](std::size_t b, std::size_t) -> double {
                     if (b == 64) throw std::runtime_error("boom");
                     return 0.0;
                   },
                   [](double a, double b) { return a + b; }),
               std::runtime_error);
}

}  // namespace
}  // namespace ccf::util
