#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace ccf::util {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 10'000;
  std::vector<std::atomic<int>> hits(kCount);
  parallel_for(kCount, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, ZeroCountIsNoop) {
  bool called = false;
  parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleThreadFallbackIsSequential) {
  std::vector<std::size_t> order;
  parallel_for(5, [&](std::size_t i) { order.push_back(i); }, 1);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, ResultsIndependentOfThreadCount) {
  auto compute = [](std::size_t threads) {
    std::vector<double> out(64, 0.0);
    parallel_for(64, [&](std::size_t i) {
      double acc = 0.0;
      for (std::size_t k = 1; k <= 1000; ++k) {
        acc += 1.0 / static_cast<double>(k + i);
      }
      out[i] = acc;
    }, threads);
    return out;
  };
  EXPECT_EQ(compute(1), compute(4));
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(100,
                   [](std::size_t i) {
                     if (i == 37) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, MoreThreadsThanWorkIsFine) {
  std::atomic<int> sum{0};
  parallel_for(3, [&](std::size_t i) { sum += static_cast<int>(i); }, 64);
  EXPECT_EQ(sum.load(), 3);
}

}  // namespace
}  // namespace ccf::util
