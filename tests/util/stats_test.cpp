#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

namespace ccf::util {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.sum(), 0.0);
}

TEST(Accumulator, BasicMoments) {
  Accumulator a;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(Accumulator, SingleValueHasZeroVariance) {
  Accumulator a;
  a.add(3.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 3.0);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
}

TEST(Accumulator, MergeEqualsSequential) {
  Accumulator all, left, right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i < 37 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Accumulator, MergeWithEmptyIsNoop) {
  Accumulator a, empty;
  a.add(1.0);
  a.add(2.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(Percentile, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

TEST(Percentile, MedianAndExtremes) {
  const std::array<double, 5> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 5.0);
}

TEST(Percentile, Interpolates) {
  const std::array<double, 2> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.75), 7.5);
}

TEST(Percentile, ClampsQ) {
  const std::array<double, 3> xs = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(xs, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 2.0), 3.0);
}

TEST(Gini, PerfectlyBalancedIsZero) {
  const std::array<double, 4> xs = {2.0, 2.0, 2.0, 2.0};
  EXPECT_NEAR(gini(xs), 0.0, 1e-12);
}

TEST(Gini, FullyConcentratedApproachesOne) {
  std::vector<double> xs(100, 0.0);
  xs[0] = 1.0;
  EXPECT_NEAR(gini(xs), 0.99, 1e-9);
}

TEST(Gini, KnownTwoValueCase) {
  // {0, 1}: gini = 0.5.
  const std::array<double, 2> xs = {0.0, 1.0};
  EXPECT_NEAR(gini(xs), 0.5, 1e-12);
}

TEST(Gini, EmptyAndZeroSumAreZero) {
  EXPECT_DOUBLE_EQ(gini({}), 0.0);
  const std::array<double, 3> zeros = {0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(gini(zeros), 0.0);
}

TEST(ImbalanceRatio, BalancedIsOne) {
  const std::array<double, 4> xs = {3.0, 3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(imbalance_ratio(xs), 1.0);
}

TEST(ImbalanceRatio, HotspotDetected) {
  const std::array<double, 4> xs = {10.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(imbalance_ratio(xs), 4.0);
}

TEST(ImbalanceRatio, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(imbalance_ratio({}), 0.0);
}

TEST(HistogramTest, CountsFallInCorrectBuckets) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bucket 0
  h.add(3.0);   // bucket 1
  h.add(9.99);  // bucket 4
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, OutOfRangeClampsToEnds) {
  Histogram h(0.0, 1.0, 2);
  h.add(-5.0);
  h.add(42.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
}

TEST(HistogramTest, EdgesAreLinear) {
  Histogram h(10.0, 20.0, 4);
  EXPECT_DOUBLE_EQ(h.edge(0), 10.0);
  EXPECT_DOUBLE_EQ(h.edge(2), 15.0);
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 3), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 3), std::invalid_argument);
}

}  // namespace
}  // namespace ccf::util
