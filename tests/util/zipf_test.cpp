#include "util/zipf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "util/rng.hpp"

namespace ccf::util {
namespace {

TEST(ZipfWeights, SumToOne) {
  for (const double theta : {0.0, 0.3, 0.8, 1.0, 2.0}) {
    const auto w = zipf_weights(100, theta);
    const double sum = std::accumulate(w.begin(), w.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-12) << "theta=" << theta;
  }
}

TEST(ZipfWeights, ThetaZeroIsUniform) {
  const auto w = zipf_weights(50, 0.0);
  for (const double x : w) EXPECT_DOUBLE_EQ(x, 1.0 / 50.0);
}

TEST(ZipfWeights, MonotonicallyDecreasing) {
  const auto w = zipf_weights(200, 0.8);
  for (std::size_t i = 1; i < w.size(); ++i) EXPECT_GE(w[i - 1], w[i]);
}

TEST(ZipfWeights, HigherThetaMoreConcentrated) {
  const auto w_low = zipf_weights(100, 0.2);
  const auto w_high = zipf_weights(100, 1.2);
  EXPECT_GT(w_high[0], w_low[0]);
  EXPECT_LT(w_high[99], w_low[99]);
}

TEST(ZipfWeights, MatchesClosedFormRatio) {
  // w_r / w_1 = r^{-theta}.
  const double theta = 0.8;
  const auto w = zipf_weights(64, theta);
  for (std::size_t r = 1; r <= 64; ++r) {
    EXPECT_NEAR(w[r - 1] / w[0], std::pow(static_cast<double>(r), -theta),
                1e-12);
  }
}

TEST(ZipfWeights, SingleNodeIsOne) {
  const auto w = zipf_weights(1, 0.8);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
}

TEST(ZipfWeights, RejectsInvalidArguments) {
  EXPECT_THROW(zipf_weights(0, 0.5), std::invalid_argument);
  EXPECT_THROW(zipf_weights(5, -0.1), std::invalid_argument);
}

TEST(GeneralizedHarmonic, KnownValues) {
  EXPECT_DOUBLE_EQ(generalized_harmonic(1, 1.0), 1.0);
  EXPECT_NEAR(generalized_harmonic(4, 1.0), 1.0 + 0.5 + 1.0 / 3 + 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(generalized_harmonic(10, 0.0), 10.0);
}

// Property sweep: the alias sampler's empirical distribution matches the
// analytic weights for several thetas and sizes.
class ZipfSamplerParam
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(ZipfSamplerParam, EmpiricalMatchesAnalytic) {
  const auto [n, theta] = GetParam();
  ZipfSampler sampler(n, theta);
  Pcg32 rng(1234, 9);
  constexpr int kDraws = 200'000;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[sampler(rng)];
  const auto& w = sampler.weights();
  for (std::size_t r = 0; r < n; ++r) {
    const double expected = w[r] * kDraws;
    // 5-sigma binomial tolerance plus a small absolute floor.
    const double tol = 5.0 * std::sqrt(expected * (1.0 - w[r])) + 5.0;
    EXPECT_NEAR(counts[r], expected, tol) << "n=" << n << " theta=" << theta
                                          << " rank=" << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, ZipfSamplerParam,
    ::testing::Values(std::make_tuple(std::size_t{2}, 0.0),
                      std::make_tuple(std::size_t{5}, 0.8),
                      std::make_tuple(std::size_t{16}, 0.4),
                      std::make_tuple(std::size_t{64}, 1.0),
                      std::make_tuple(std::size_t{128}, 2.0)));

TEST(ZipfSampler, SizeAndThetaAccessors) {
  ZipfSampler s(10, 0.7);
  EXPECT_EQ(s.size(), 10u);
  EXPECT_DOUBLE_EQ(s.theta(), 0.7);
}

TEST(ZipfSampler, DeterministicGivenRngState) {
  ZipfSampler s(20, 0.8);
  Pcg32 a(5, 1), b(5, 1);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(s(a), s(b));
}

}  // namespace
}  // namespace ccf::util
