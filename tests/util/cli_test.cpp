#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <array>

namespace ccf::util {
namespace {

ArgParser make_parser() {
  ArgParser p("prog", "test program");
  p.add_flag("nodes", "100", "node count");
  p.add_flag("zipf", "0.8", "zipf factor");
  p.add_flag("verbose", "false", "chatty output");
  p.add_flag("sweep", "1:5:2", "an int sweep");
  p.add_flag("fsweep", "0.0:1.0:0.5", "a float sweep");
  return p;
}

TEST(ArgParser, DefaultsApplyWithoutArgs) {
  auto p = make_parser();
  const std::array<const char*, 1> argv = {"prog"};
  p.parse(1, argv.data());
  EXPECT_EQ(p.get_int("nodes"), 100);
  EXPECT_DOUBLE_EQ(p.get_double("zipf"), 0.8);
  EXPECT_FALSE(p.get_bool("verbose"));
  EXPECT_FALSE(p.provided("nodes"));
}

TEST(ArgParser, SpaceSeparatedValues) {
  auto p = make_parser();
  const std::array<const char*, 5> argv = {"prog", "--nodes", "500", "--zipf",
                                           "0.4"};
  p.parse(argv.size(), argv.data());
  EXPECT_EQ(p.get_int("nodes"), 500);
  EXPECT_DOUBLE_EQ(p.get_double("zipf"), 0.4);
  EXPECT_TRUE(p.provided("nodes"));
}

TEST(ArgParser, EqualsSyntax) {
  auto p = make_parser();
  const std::array<const char*, 2> argv = {"prog", "--nodes=250"};
  p.parse(argv.size(), argv.data());
  EXPECT_EQ(p.get_int("nodes"), 250);
}

TEST(ArgParser, BareBooleanFlag) {
  auto p = make_parser();
  const std::array<const char*, 2> argv = {"prog", "--verbose"};
  p.parse(argv.size(), argv.data());
  EXPECT_TRUE(p.get_bool("verbose"));
}

TEST(ArgParser, BooleanBeforeAnotherFlag) {
  auto p = make_parser();
  const std::array<const char*, 4> argv = {"prog", "--verbose", "--nodes", "7"};
  p.parse(argv.size(), argv.data());
  EXPECT_TRUE(p.get_bool("verbose"));
  EXPECT_EQ(p.get_int("nodes"), 7);
}

TEST(ArgParser, UnknownFlagThrows) {
  auto p = make_parser();
  const std::array<const char*, 2> argv = {"prog", "--bogus"};
  EXPECT_THROW(p.parse(argv.size(), argv.data()), std::invalid_argument);
}

TEST(ArgParser, MissingValueThrows) {
  auto p = make_parser();
  const std::array<const char*, 2> argv = {"prog", "--nodes"};
  EXPECT_THROW(p.parse(argv.size(), argv.data()), std::invalid_argument);
}

TEST(ArgParser, PositionalArgThrows) {
  auto p = make_parser();
  const std::array<const char*, 2> argv = {"prog", "positional"};
  EXPECT_THROW(p.parse(argv.size(), argv.data()), std::invalid_argument);
}

TEST(ArgParser, DuplicateRegistrationThrows) {
  ArgParser p("prog", "x");
  p.add_flag("a", "1", "");
  EXPECT_THROW(p.add_flag("a", "2", ""), std::logic_error);
}

TEST(ArgParser, UnregisteredLookupThrows) {
  auto p = make_parser();
  EXPECT_THROW(p.get("nope"), std::logic_error);
}

TEST(ArgParser, IntSweepExpansion) {
  auto p = make_parser();
  const std::array<const char*, 1> argv = {"prog"};
  p.parse(1, argv.data());
  const auto sweep = p.get_int_sweep("sweep");
  ASSERT_EQ(sweep.size(), 3u);
  EXPECT_EQ(sweep[0], 1);
  EXPECT_EQ(sweep[1], 3);
  EXPECT_EQ(sweep[2], 5);
}

TEST(ArgParser, SingleValueSweep) {
  auto p = make_parser();
  const std::array<const char*, 2> argv = {"prog", "--sweep=42"};
  p.parse(argv.size(), argv.data());
  const auto sweep = p.get_int_sweep("sweep");
  ASSERT_EQ(sweep.size(), 1u);
  EXPECT_EQ(sweep[0], 42);
}

TEST(ArgParser, DoubleSweepIncludesEndpoint) {
  auto p = make_parser();
  const std::array<const char*, 1> argv = {"prog"};
  p.parse(1, argv.data());
  const auto sweep = p.get_double_sweep("fsweep");
  ASSERT_EQ(sweep.size(), 3u);
  EXPECT_DOUBLE_EQ(sweep[0], 0.0);
  EXPECT_DOUBLE_EQ(sweep[1], 0.5);
  EXPECT_DOUBLE_EQ(sweep[2], 1.0);
}

TEST(ArgParser, MalformedSweepThrows) {
  auto p = make_parser();
  const std::array<const char*, 2> argv = {"prog", "--sweep=1:2"};
  p.parse(argv.size(), argv.data());
  EXPECT_THROW(p.get_int_sweep("sweep"), std::invalid_argument);
}

TEST(ArgParser, BadSweepBoundsThrow) {
  auto p = make_parser();
  const std::array<const char*, 2> argv = {"prog", "--sweep=5:1:1"};
  p.parse(argv.size(), argv.data());
  EXPECT_THROW(p.get_int_sweep("sweep"), std::invalid_argument);
}

TEST(ArgParser, UsageMentionsFlagsAndDefaults) {
  auto p = make_parser();
  const std::string usage = p.usage();
  EXPECT_NE(usage.find("--nodes"), std::string::npos);
  EXPECT_NE(usage.find("default: 100"), std::string::npos);
  EXPECT_NE(usage.find("test program"), std::string::npos);
}

TEST(ArgParser, NonBooleanValueForBoolThrows) {
  auto p = make_parser();
  const std::array<const char*, 2> argv = {"prog", "--verbose=maybe"};
  p.parse(argv.size(), argv.data());
  EXPECT_THROW(p.get_bool("verbose"), std::invalid_argument);
}

}  // namespace
}  // namespace ccf::util
