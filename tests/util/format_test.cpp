#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace ccf::util {
namespace {

TEST(FormatBytes, PicksSensibleUnits) {
  EXPECT_EQ(format_bytes(0.0), "0.00 B");
  EXPECT_EQ(format_bytes(999.0), "999 B");
  EXPECT_EQ(format_bytes(1500.0), "1.50 kB");
  EXPECT_EQ(format_bytes(2.5e6), "2.50 MB");
  EXPECT_EQ(format_bytes(990e9), "990 GB");
  EXPECT_EQ(format_bytes(1.2e12), "1.20 TB");
}

TEST(FormatBytes, NegativeValuesKeepSign) {
  EXPECT_EQ(format_bytes(-2.5e6), "-2.50 MB");
}

TEST(FormatSeconds, PicksSensibleUnits) {
  EXPECT_EQ(format_seconds(0.5e-6), "500 ns");
  EXPECT_EQ(format_seconds(2e-6), "2.00 us");
  EXPECT_EQ(format_seconds(3.5e-3), "3.50 ms");
  EXPECT_EQ(format_seconds(12.0), "12.0 s");
  EXPECT_EQ(format_seconds(90.0), "1m30.0s");
  EXPECT_EQ(format_seconds(7260.0), "2h01m");
}

TEST(FormatCount, Suffixes) {
  EXPECT_EQ(format_count(17.0), "17");
  EXPECT_EQ(format_count(1800.0), "1.80 k");
  EXPECT_EQ(format_count(90e6), "90.0 M");
  EXPECT_EQ(format_count(2.5e9), "2.50 B");
}

TEST(FormatFixed, Precision) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(10.0, 0), "10");
}

TEST(ParseScaled, PlainAndSuffixed) {
  EXPECT_DOUBLE_EQ(parse_scaled("600"), 600.0);
  EXPECT_DOUBLE_EQ(parse_scaled("1.5G"), 1.5e9);
  EXPECT_DOUBLE_EQ(parse_scaled("250M"), 250e6);
  EXPECT_DOUBLE_EQ(parse_scaled("4k"), 4000.0);
  EXPECT_DOUBLE_EQ(parse_scaled("2T"), 2e12);
}

TEST(ParseScaled, RejectsGarbage) {
  EXPECT_THROW(parse_scaled(""), std::invalid_argument);
  EXPECT_THROW(parse_scaled("abc"), std::invalid_argument);
  EXPECT_THROW(parse_scaled("1.5X"), std::invalid_argument);
  EXPECT_THROW(parse_scaled("1.5GB"), std::invalid_argument);
}

TEST(TableTest, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1.5"});
  t.add_row({"b", "20"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name  |"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Numeric cells right-aligned: "20" padded on the left within width 5.
  EXPECT_NE(out.find("|    20 |"), std::string::npos);
}

TEST(TableTest, RowWidthMustMatchHeader) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(TableTest, CsvEscapesSpecials) {
  Table t({"k", "v"});
  t.add_row({"with,comma", "with\"quote"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "k,v\n\"with,comma\",\"with\"\"quote\"\n");
}

TEST(TableTest, AccessorsReflectContents) {
  Table t({"x"});
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_EQ(t.column_count(), 1u);
  EXPECT_EQ(t.row(1).at(0), "2");
}

TEST(CsvWriterTest, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/ccf_csv_test.csv";
  {
    CsvWriter w(path);
    w.header({"a", "b"});
    w.row({"1", "x,y"});
    EXPECT_EQ(w.rows_written(), 1u);
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "a,b\n1,\"x,y\"\n");
}

TEST(CsvWriterTest, EnforcesWidthAndSingleHeader) {
  const std::string path = ::testing::TempDir() + "/ccf_csv_test2.csv";
  CsvWriter w(path);
  w.header({"a", "b"});
  EXPECT_THROW(w.header({"again"}), std::logic_error);
  EXPECT_THROW(w.row({"too", "many", "cells"}), std::invalid_argument);
}

TEST(CsvWriterTest, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x/y.csv"), std::runtime_error);
}

}  // namespace
}  // namespace ccf::util
