// The paper's motivating example (Fig. 1 / Fig. 2), shared across tests.
//
// Three nodes; tuples written key^frequency:
//   Node 0: 1^3 2^1 0^3      Node 1: 1^6 2^2 5^1      Node 2: 5^2 0^1
// Keys {0,1,2,5}, partitioned with f(k) = k mod 6 so every key is its own
// partition (partitions 3 and 4 are empty). Each tuple is 1 byte so that
// byte counts equal the paper's tuple counts.
//
// Known ground truth from the paper:
//   * SP0 = hash placement, traffic 8 tuples, optimal CCT 4 (T = 4).
//   * SP1 = the plan of Fig. 2(c), traffic 7, optimal CCT 3 (T = 3).
//   * SP2 = traffic-minimal placement (Mini), traffic 6, optimal CCT 4.
//   * T* = 3 (no placement beats SP1's bottleneck).
#pragma once

#include <cstdint>
#include <vector>

#include "data/chunk_matrix.hpp"
#include "data/relation.hpp"

namespace ccf::testing {

inline constexpr std::size_t kPaperNodes = 3;
inline constexpr std::size_t kPaperPartitions = 6;

/// Chunk matrix of the example (bytes == tuples).
inline data::ChunkMatrix paper_chunk_matrix() {
  data::ChunkMatrix m(kPaperPartitions, kPaperNodes);
  // partition 0 = key 0: node0 x3, node2 x1
  m.set(0, 0, 3.0);
  m.set(0, 2, 1.0);
  // partition 1 = key 1: node0 x3, node1 x6
  m.set(1, 0, 3.0);
  m.set(1, 1, 6.0);
  // partition 2 = key 2: node0 x1, node1 x2
  m.set(2, 0, 1.0);
  m.set(2, 1, 2.0);
  // partition 5 = key 5: node1 x1, node2 x2
  m.set(5, 1, 1.0);
  m.set(5, 2, 2.0);
  return m;
}

/// The same data as tuple-level relations (every tuple 1 payload byte).
/// The "build" side is empty — the example joins a single multiset; tests
/// that need two relations put all tuples on the probe side.
inline data::DistributedRelation paper_relation() {
  data::DistributedRelation rel("FIG1", kPaperNodes);
  auto add_n = [&rel](std::size_t node, std::uint64_t key, int count) {
    for (int c = 0; c < count; ++c) rel.shard(node).add(data::Tuple{key, 1});
  };
  add_n(0, 1, 3);
  add_n(0, 2, 1);
  add_n(0, 0, 3);
  add_n(1, 1, 6);
  add_n(1, 2, 2);
  add_n(1, 5, 1);
  add_n(2, 5, 2);
  add_n(2, 0, 1);
  return rel;
}

/// SP1 (Fig. 2(c)): key0->n0, key1->n1, key2->n0, key5->n2.
/// Empty partitions 3 and 4 are pinned to node 0 (they carry no bytes).
inline std::vector<std::uint32_t> paper_sp1() { return {0, 1, 0, 0, 0, 2}; }

/// SP2 (traffic-optimal / Mini): key0->n0, key1->n1, key2->n1, key5->n2.
inline std::vector<std::uint32_t> paper_sp2() { return {0, 1, 1, 0, 0, 2}; }

/// SP0 (hash, dest = k mod 3): key0->n0, key1->n1, key2->n2, key5->n2.
inline std::vector<std::uint32_t> paper_sp0() { return {0, 1, 2, 0, 1, 2}; }

inline constexpr double kTrafficSp0 = 8.0;
inline constexpr double kTrafficSp1 = 7.0;
inline constexpr double kTrafficSp2 = 6.0;
inline constexpr double kMakespanSp0 = 4.0;
inline constexpr double kMakespanSp1 = 3.0;
inline constexpr double kMakespanSp2 = 4.0;
inline constexpr double kOptimalMakespan = 3.0;

}  // namespace ccf::testing
