// Invariant-checking allocator decorator (ISSUE 4). Wraps any RateAllocator
// and, after every allocate() call, asserts the physical invariants no
// policy may violate — on pristine *and* fault-degraded capacities:
//
//  1. Every rate is finite and >= 0; every active remaining volume is
//     finite and > 0 (the engine compacts completed flows out before the
//     next allocate).
//  2. Per-link: the sum of rates across a link never exceeds its *current*
//     capacity (the paper's constraint (1.5), read through ctx.capacities()
//     so degraded values are enforced, not the pristine ones).
//  3. Per-coflow conservation / monotonicity: bytes_sent never decreases,
//     and bytes_sent + Σ active remaining never exceeds bytes_total — the
//     robust form of "remaining bytes are monotone non-increasing" (the
//     engine only ever moves bytes from remaining into bytes_sent).
//  4. The min_dt completion hint, when set, equals the engine's full
//     O(#flows) scan bit-for-bit (the incremental engine consumes the hint
//     instead of scanning, so an inexact hint would silently change event
//     times).
//
// The decorator is engine-agnostic: under the reference engine the
// inherited AoS bridge routes through the SoA overload below with a
// throwaway context, so both modes get checked by construction.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "net/allocator.hpp"

namespace ccf::testing {

class InvariantCheckedAllocator final : public net::RateAllocator {
 public:
  explicit InvariantCheckedAllocator(std::unique_ptr<net::RateAllocator> inner)
      : inner_(std::move(inner)) {}

  std::string name() const override { return inner_->name(); }

  void allocate(net::AllocatorContext& ctx, const net::ActiveFlows& flows,
                std::span<net::CoflowState> coflows, double now) override {
    inner_->allocate(ctx, flows, coflows, now);
    ++epochs_;
    check_epoch(ctx, flows, coflows, now);
  }

  /// Allocation epochs checked so far (tests assert the checker actually ran).
  std::size_t epochs() const noexcept { return epochs_; }

  /// Forget the per-coflow progress watermarks. Call between simulation
  /// epochs (Simulator::reset_epoch) when one decorated allocator is reused
  /// across runs — a new epoch's coflows legitimately restart bytes_sent
  /// from zero, which check 3 would otherwise flag as lost bytes.
  void reset_epoch() noexcept {
    last_sent_.clear();
    active_rem_.clear();
  }

 private:
  void check_epoch(net::AllocatorContext& ctx, const net::ActiveFlows& flows,
                   std::span<const net::CoflowState> coflows, double now) {
    // 1. Per-flow sanity + per-link load accumulation in one pass.
    if (link_load_.size() < ctx.link_count()) {
      link_load_.assign(ctx.link_count(), 0.0);
    }
    double scan_min_dt = net::AllocatorContext::kInfDt;
    for (std::size_t i = 0; i < flows.count; ++i) {
      const double r = flows.rate[i];
      const double rem = flows.remaining[i];
      EXPECT_TRUE(std::isfinite(r) && r >= 0.0)
          << name() << ": flow " << i << " rate " << r << " at t=" << now;
      EXPECT_TRUE(std::isfinite(rem) && rem > 0.0)
          << name() << ": flow " << i << " residual " << rem << " at t=" << now;
      if (r > 0.0) scan_min_dt = std::min(scan_min_dt, rem / r);
      for (const auto l : flows.links(i)) link_load_[l] += r;
    }

    // 2. Per-link capacity (current, possibly fault-degraded). Tolerance
    //    scales with the capacity: allocators fill links exactly, so the sum
    //    sits within rounding of the capacity itself.
    const std::span<const double> caps = ctx.capacities();
    for (std::size_t l = 0; l < caps.size(); ++l) {
      const double cap = caps[l];
      EXPECT_LE(link_load_[l], cap + 1e-9 * (1.0 + cap))
          << name() << ": link " << l << " oversubscribed at t=" << now;
      link_load_[l] = 0.0;  // restore the all-zero invariant
    }

    // 3. Conservation and monotone progress per coflow.
    if (last_sent_.size() < coflows.size()) {
      last_sent_.resize(coflows.size(), 0.0);
      active_rem_.resize(coflows.size(), 0.0);
    }
    for (std::size_t i = 0; i < flows.count; ++i) {
      active_rem_[flows.coflow[i]] += flows.remaining[i];
    }
    for (std::size_t c = 0; c < coflows.size(); ++c) {
      const net::CoflowState& st = coflows[c];
      EXPECT_TRUE(std::isfinite(st.bytes_sent) && st.bytes_sent >= 0.0)
          << name() << ": coflow " << c << " bytes_sent " << st.bytes_sent;
      EXPECT_GE(st.bytes_sent, last_sent_[c] - 1e-9 * (1.0 + last_sent_[c]))
          << name() << ": coflow " << c << " lost bytes at t=" << now;
      last_sent_[c] = st.bytes_sent;
      EXPECT_LE(st.bytes_sent + active_rem_[c],
                st.bytes_total + 1e-6 + 1e-9 * st.bytes_total)
          << name() << ": coflow " << c << " overshot its volume at t=" << now;
      active_rem_[c] = 0.0;  // restore the all-zero invariant
    }

    // 4. Completion-hint exactness (see the protocol note in allocator.hpp:
    //    hints must be computed per-flow, hence bit-identical to this scan).
    if (ctx.min_dt_valid()) {
      EXPECT_EQ(ctx.min_dt(), scan_min_dt)
          << name() << ": min_dt hint diverges from a full scan at t=" << now;
      EXPECT_TRUE(ctx.min_dt() > 0.0 || flows.count == 0)
          << name() << ": non-positive min_dt at t=" << now;
    }
  }

  std::unique_ptr<net::RateAllocator> inner_;
  std::size_t epochs_ = 0;
  std::vector<double> link_load_;   ///< all-zero between checks
  std::vector<double> last_sent_;   ///< per-coflow bytes_sent watermark
  std::vector<double> active_rem_;  ///< all-zero between checks
};

inline std::unique_ptr<net::RateAllocator> make_invariant_checked(
    std::unique_ptr<net::RateAllocator> inner) {
  return std::make_unique<InvariantCheckedAllocator>(std::move(inner));
}

/// Convenience: wrap the named stock allocator.
inline std::unique_ptr<net::RateAllocator> make_invariant_checked(
    const std::string& allocator) {
  return make_invariant_checked(net::make_allocator(allocator));
}

}  // namespace ccf::testing
