// Hand-computed golden instances pinning the route choices and CCTs of the
// topology layer (DESIGN.md §12).
//
// Fat-tree (k = 4, all links 10 B/s): hosts 0 and 1 sit under edge (0,0),
// hosts 4 and 5 under edge (1,0). The coflow {0->4: 100 B, 1->5: 100 B} has
// two optimal routings — put the flows on different aggregation switches —
// and one pessimal one — collapse both onto agg 0, loading every link of the
// shared 4-link segment with 200 B. So:
//   collapsed      -> Γ = 200/10 = 20 s  (both flows squeezed through agg 0)
//   ecmp           -> Γ = 100/10 = 10 s  ((0+4)%4 = path 0 = (agg0,core0);
//                                         (1+5)%4 = path 2 = (agg1,core0))
//   greedy / joint -> 10 s               (must discover the disjoint paths)
// Every allocator attains these exactly: the flows are symmetric, so fair,
// varys, aalo and varys-edf all produce the same 5 B/s (contended) or
// 10 B/s (disjoint) rates MADD does.
//
// Waxman (4 hosts, 2 routers, seed-stable): hosts {0,2} attach to router 0,
// {1,3} to router 1 (round-robin i mod 2); the single inter-router trunk
// carries ceil(4/2) * 10 = 20 B/s. The coflow {0->1: 100, 2->3: 100} fills
// the trunk exactly (two 10 B/s flows), CCT 10 s; {0->1: 100, 2->1: 100}
// shares host 1's 10 B/s ingress, CCT 20 s. Any seed produces this topology:
// with two routers the patched graph is always the single trunk.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "net/multipath.hpp"
#include "net/simulator.hpp"
#include "net/topology.hpp"

namespace ccf::net {
namespace {

constexpr const char* kAllocators[] = {"fair", "madd", "varys", "aalo",
                                       "varys-edf"};

double simulate_cct(std::shared_ptr<const Topology> topo, RouteChoice choice,
                    const FlowMatrix& m, const char* allocator) {
  Simulator sim(
      std::make_shared<const RoutedTopology>(std::move(topo), std::move(choice)),
      make_allocator(allocator));
  sim.add_coflow(CoflowSpec("golden", 0.0, m));
  return sim.run().coflows[0].cct();
}

TEST(TopologyGolden, FatTreeRouteChoicesAndCctsPerAllocator) {
  const auto topo = Topology::fat_tree(4, 10.0);
  FlowMatrix m(topo->nodes());
  m.set(0, 4, 100.0);
  m.set(1, 5, 100.0);

  // The analytic objective first: Γ doubles when both flows collapse onto
  // aggregation switch 0.
  EXPECT_DOUBLE_EQ(routed_gamma(*topo, m, route_collapsed(*topo)), 20.0);
  EXPECT_DOUBLE_EQ(routed_gamma(*topo, m, route_ecmp(*topo)), 10.0);
  EXPECT_DOUBLE_EQ(routed_gamma(*topo, m, route_greedy(*topo, m)), 10.0);
  EXPECT_DOUBLE_EQ(routed_gamma(*topo, m, route_joint(*topo, m)), 10.0);

  // The greedy router must move flow (1,5) off flow (0,4)'s aggregation
  // switch: any of the h^2 = 4 inter-pod paths with agg index 1 (indices 2
  // and 3) is disjoint from path 0.
  const RouteChoice greedy = route_greedy(*topo, m);
  const std::size_t n = topo->nodes();
  EXPECT_EQ(greedy[0 * n + 4], 0u);  // first flow keeps the first path
  EXPECT_GE(greedy[1 * n + 5], 2u);  // second flow switches to agg 1

  for (const char* allocator : kAllocators) {
    SCOPED_TRACE(allocator);
    EXPECT_DOUBLE_EQ(
        simulate_cct(topo, route_collapsed(*topo), m, allocator), 20.0);
    EXPECT_DOUBLE_EQ(simulate_cct(topo, route_ecmp(*topo), m, allocator),
                     10.0);
    EXPECT_DOUBLE_EQ(
        simulate_cct(topo, route_greedy(*topo, m), m, allocator), 10.0);
    EXPECT_DOUBLE_EQ(
        simulate_cct(topo, route_joint(*topo, m), m, allocator), 10.0);
  }
}

TEST(TopologyGolden, WaxmanTrunkContentionCctsPerAllocator) {
  WaxmanOptions wax;
  wax.routers = 2;
  const auto topo = Topology::waxman(4, 10.0, 9, wax);

  // Structure: 8 host ports + one trunk in each direction, capacity 20 B/s,
  // and exactly one path between hosts on different routers.
  ASSERT_EQ(topo->link_count(), 10u);
  EXPECT_DOUBLE_EQ(topo->link_capacity(8), 20.0);
  EXPECT_DOUBLE_EQ(topo->link_capacity(9), 20.0);
  EXPECT_EQ(topo->path_count(0, 1), 1u);
  EXPECT_EQ(topo->path_count(0, 2), 1u);  // same router: direct
  EXPECT_EQ(topo->max_path_count(), 1u);

  FlowMatrix fill(4);  // fills the trunk exactly: 2 x 10 B/s
  fill.set(0, 1, 100.0);
  fill.set(2, 3, 100.0);
  FlowMatrix contend(4);  // shares host 1's ingress: 2 x 5 B/s
  contend.set(0, 1, 100.0);
  contend.set(2, 1, 100.0);
  for (const char* allocator : kAllocators) {
    SCOPED_TRACE(allocator);
    EXPECT_DOUBLE_EQ(
        simulate_cct(topo, route_ecmp(*topo), fill, allocator), 10.0);
    EXPECT_DOUBLE_EQ(
        simulate_cct(topo, route_ecmp(*topo), contend, allocator), 20.0);
  }
}

TEST(TopologyGolden, SeededGeneratorIsRunAndThreadIndependent) {
  WaxmanOptions wax;
  wax.routers = 6;
  wax.route_k = 3;
  const auto build = [&] { return Topology::waxman(18, 10.0, 1234, wax); };

  // Same seed on the main thread and on two concurrent threads: the builds
  // must be structurally identical (the generator is single-threaded and
  // seeded, so thread count and scheduling cannot leak in).
  const auto reference = build();
  std::vector<std::shared_ptr<const Topology>> built(2);
  {
    std::thread a([&] { built[0] = build(); });
    std::thread b([&] { built[1] = build(); });
    a.join();
    b.join();
  }
  for (const auto& topo : built) {
    ASSERT_NE(topo, nullptr);
    ASSERT_EQ(topo->link_count(), reference->link_count());
    for (std::size_t l = 0; l < reference->link_count(); ++l) {
      const auto id = static_cast<Topology::LinkId>(l);
      EXPECT_EQ(topo->link_capacity(id), reference->link_capacity(id));
      EXPECT_EQ(topo->link_ends(id).tail, reference->link_ends(id).tail);
      EXPECT_EQ(topo->link_ends(id).head, reference->link_ends(id).head);
    }
    const auto n = static_cast<std::uint32_t>(reference->nodes());
    for (std::uint32_t i = 0; i < n; ++i) {
      for (std::uint32_t j = 0; j < n; ++j) {
        if (i == j) continue;
        ASSERT_EQ(topo->path_count(i, j), reference->path_count(i, j));
        for (std::uint32_t k = 0; k < reference->path_count(i, j); ++k) {
          EXPECT_EQ(topo->path_links(i, j, k), reference->path_links(i, j, k));
        }
      }
    }
  }
}

}  // namespace
}  // namespace ccf::net
