#include "net/fabric.hpp"

#include <gtest/gtest.h>

namespace ccf::net {
namespace {

TEST(Fabric, HomogeneousConstruction) {
  const Fabric f(4, 100.0);
  EXPECT_EQ(f.nodes(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(f.egress_capacity(i), 100.0);
    EXPECT_DOUBLE_EQ(f.ingress_capacity(i), 100.0);
  }
  EXPECT_TRUE(f.homogeneous());
  EXPECT_DOUBLE_EQ(f.min_capacity(), 100.0);
}

TEST(Fabric, DefaultRateIsOneGigabit) {
  const Fabric f(2);
  EXPECT_DOUBLE_EQ(f.egress_capacity(0), 125e6);
  EXPECT_DOUBLE_EQ(Fabric::kDefaultPortRate, 125e6);
}

TEST(Fabric, HeterogeneousConstruction) {
  const Fabric f({100.0, 200.0}, {50.0, 80.0});
  EXPECT_FALSE(f.homogeneous());
  EXPECT_DOUBLE_EQ(f.egress_capacity(1), 200.0);
  EXPECT_DOUBLE_EQ(f.ingress_capacity(0), 50.0);
  EXPECT_DOUBLE_EQ(f.min_capacity(), 50.0);
}

TEST(Fabric, RejectsInvalidArguments) {
  EXPECT_THROW(Fabric(0), std::invalid_argument);
  EXPECT_THROW(Fabric(3, 0.0), std::invalid_argument);
  EXPECT_THROW(Fabric(3, -5.0), std::invalid_argument);
  EXPECT_THROW(Fabric({}, {}), std::invalid_argument);
  EXPECT_THROW(Fabric({1.0, 2.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(Fabric({1.0, 0.0}, {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Fabric({1.0, 1.0}, {1.0, -1.0}), std::invalid_argument);
}

TEST(Fabric, OutOfRangeAccessThrows) {
  const Fabric f(2);
  EXPECT_THROW(f.egress_capacity(2), std::out_of_range);
  EXPECT_THROW(f.ingress_capacity(5), std::out_of_range);
}

}  // namespace
}  // namespace ccf::net
