// Pins net::Demand's contract (net/demand.hpp): the columnar triple store
// behind every layer's demand plane.
//
//  1. Merge semantics — duplicate (src,dst) insertions sum in insertion
//     order (FlowMatrix::add's accumulation order), zero volumes are
//     dropped, and the finalized views are unique pairs ascending (src,dst).
//  2. Validation — src == dst, out-of-range endpoints and negative or
//     non-finite volumes are rejected exactly like the downstream
//     Network::append_links contract requires.
//  3. Dense-bridge bit-identity — from_matrix/to_matrix round-trip,
//     to_flows matches FlowMatrix::to_flows entry for entry, marginals and
//     link/gamma metrics equal the dense path bitwise.
//  4. CSV ingestion — demand_from_csv streams triples with the same merge,
//     drop and rejection rules, and round-trips through demand_to_csv.
#include "net/demand.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <vector>

#include "net/io.hpp"
#include "net/metrics.hpp"
#include "net/rack.hpp"

namespace ccf::net {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

/// A small matrix with a diagonal entry, a zero and a few positives.
FlowMatrix sample_matrix() {
  FlowMatrix m(4);
  m.set(0, 1, 10.0);
  m.set(1, 2, 0.25);
  m.set(3, 0, 7.0);
  m.set(2, 2, 99.0);  // diagonal: never demand
  m.set(2, 3, 0.0);   // explicit zero: dropped
  return m;
}

TEST(Demand, DuplicatePairsSumInInsertionOrder) {
  Demand d(4);
  d.add(2, 1, 0.1);
  d.add(0, 3, 5.0);
  d.add(2, 1, 0.2);
  d.add(2, 1, 0.3);
  EXPECT_EQ(d.size(), 2u);
  // Exactly the dense accumulation: ((0.1 + 0.2) + 0.3), not any reordering.
  EXPECT_EQ(d.volume(2, 1), 0.1 + 0.2 + 0.3);
  EXPECT_EQ(d.volume(0, 3), 5.0);
  EXPECT_EQ(d.traffic(), d.volume(0, 3) + d.volume(2, 1));
}

TEST(Demand, ZeroVolumesDropConsistentlyWithDense) {
  const FlowMatrix m = sample_matrix();
  Demand d(4);
  d.add(0, 1, 10.0);
  d.add(1, 2, 0.25);
  d.add(3, 0, 7.0);
  d.add(2, 3, 0.0);  // dropped on entry

  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.flow_count(), m.flow_count());
  EXPECT_EQ(d.traffic(), m.traffic());
  EXPECT_EQ(d.volume(2, 3), 0.0);
  // The dense view reports zero for the dropped pair too.
  EXPECT_EQ(d.to_matrix().volume(2, 3), 0.0);
}

TEST(Demand, RejectsIntraRackOutOfRangeAndBadVolumes) {
  Demand d(4);
  EXPECT_THROW(d.add(1, 1, 5.0), std::invalid_argument);  // src == dst
  EXPECT_THROW(d.add(4, 0, 5.0), std::invalid_argument);  // src out of range
  EXPECT_THROW(d.add(0, 4, 5.0), std::invalid_argument);  // dst out of range
  EXPECT_THROW(d.add(0, 1, -1.0), std::invalid_argument);
  EXPECT_THROW(d.add(0, 1, std::nan("")), std::invalid_argument);
  EXPECT_THROW(d.add(0, 1, std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_TRUE(d.empty());  // failed adds leave no partial state
  EXPECT_THROW(Demand(0), std::invalid_argument);
  EXPECT_THROW(d.widen(2), std::invalid_argument);  // shrink
}

TEST(Demand, AccumulateValidatesLikeAdd) {
  Demand d(4);
  std::vector<Flow> flows(1);
  flows[0].src = 2;
  flows[0].dst = 2;
  flows[0].volume = 1.0;
  EXPECT_THROW(d.accumulate(std::span<const Flow>(flows)),
               std::invalid_argument);

  Demand narrow(2), wide(4);
  narrow.add(0, 1, 3.0);
  wide.accumulate(narrow);  // narrower-into-wider is the epoch widen path
  EXPECT_EQ(wide.volume(0, 1), 3.0);
  EXPECT_THROW(narrow.accumulate(wide), std::invalid_argument);

  FlowMatrix mismatched(3);
  EXPECT_THROW(d.accumulate(mismatched), std::invalid_argument);
}

TEST(Demand, ViewsAreSortedAndUnique) {
  Demand d(5);
  d.add(4, 0, 1.0);
  d.add(1, 3, 2.0);
  d.add(1, 2, 3.0);
  d.add(4, 0, 4.0);
  const auto srcs = d.srcs();
  const auto dsts = d.dsts();
  ASSERT_EQ(srcs.size(), 3u);
  for (std::size_t k = 1; k < srcs.size(); ++k) {
    const bool ascending =
        srcs[k - 1] < srcs[k] ||
        (srcs[k - 1] == srcs[k] && dsts[k - 1] < dsts[k]);
    EXPECT_TRUE(ascending) << k;
  }
  EXPECT_EQ(d.volumes()[2], 5.0);  // (4,0) merged
}

TEST(Demand, DenseBridgeRoundTripsBitwise) {
  const FlowMatrix m = sample_matrix();
  const Demand d = Demand::from_matrix(m);
  const FlowMatrix back = d.to_matrix();
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      if (i == j) continue;  // diagonal never crosses the bridge
      EXPECT_EQ(back.volume(i, j), m.volume(i, j)) << i << "," << j;
    }
  }

  const std::vector<Flow> dense = m.to_flows();
  const std::vector<Flow> sparse = d.to_flows();
  ASSERT_EQ(sparse.size(), dense.size());
  for (std::size_t k = 0; k < dense.size(); ++k) {
    EXPECT_EQ(sparse[k].src, dense[k].src) << k;
    EXPECT_EQ(sparse[k].dst, dense[k].dst) << k;
    EXPECT_EQ(sparse[k].volume, dense[k].volume) << k;
    EXPECT_EQ(sparse[k].remaining, dense[k].remaining) << k;
  }
}

TEST(Demand, MarginalsMatchDensePerPortLoads) {
  const FlowMatrix m = sample_matrix();
  const Demand::PortMarginals marginals = Demand::from_matrix(m).marginals();
  ASSERT_EQ(marginals.egress.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(marginals.egress[i], m.egress(i)) << i;
    EXPECT_EQ(marginals.ingress[i], m.ingress(i)) << i;
  }
  const PortLoads loads = port_loads(m);
  EXPECT_EQ(loads.max_egress, 10.0);
  EXPECT_EQ(loads.max_ingress, 10.0);
}

TEST(Demand, LinkAndGammaMetricsMatchDenseBitwise) {
  const RackFabric network(2, 2, 100.0, 2.0);  // 4 hosts, oversubscribed
  FlowMatrix m(4);
  m.set(0, 2, 400.0);  // cross-rack
  m.set(0, 1, 100.0);  // intra-rack
  m.set(3, 1, 250.0);  // cross-rack
  Demand d(4);
  d.add(0, 2, 400.0);
  d.add(0, 1, 100.0);
  d.add(3, 1, 250.0);

  const std::vector<double> dense = link_loads(m, network);
  const std::vector<double> sparse = link_loads(d, network);
  ASSERT_EQ(sparse.size(), dense.size());
  for (std::size_t l = 0; l < dense.size(); ++l) {
    EXPECT_EQ(sparse[l], dense[l]) << l;
  }
  EXPECT_EQ(gamma_bound(d, network), gamma_bound(m, network));
}

TEST(Demand, WidenAndClearPreserveTheRightState) {
  Demand d(3);
  d.add(0, 2, 4.0);
  d.widen(8);
  EXPECT_EQ(d.nodes(), 8u);
  EXPECT_EQ(d.volume(0, 2), 4.0);
  d.add(7, 0, 1.0);  // the widened range is live
  d.clear();
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.nodes(), 8u);
  EXPECT_EQ(d.traffic(), 0.0);
}

// --- CSV ingestion ---------------------------------------------------------

TEST(DemandIo, StreamsTriplesWithMergeAndHeader) {
  const auto path = temp_path("demand1.csv");
  write_file(path, "src,dst,bytes\n0,1,100\n2,0,50\n0,1,25\n1,2,0\n");
  const Demand d = demand_from_csv(path);
  EXPECT_EQ(d.nodes(), 3u);
  EXPECT_EQ(d.size(), 2u);             // duplicate merged, zero dropped
  EXPECT_EQ(d.volume(0, 1), 125.0);    // 100 + 25 in file order
  EXPECT_EQ(d.volume(2, 0), 50.0);
  EXPECT_EQ(d.traffic(), 175.0);
}

TEST(DemandIo, MatchesTheDenseReader) {
  const auto path = temp_path("demand2.csv");
  write_file(path, "0,3,10\n3,0,2.5\n1,2,0.125\n0,3,1\n");
  const Demand d = demand_from_csv(path, 5);
  const FlowMatrix m = flow_matrix_from_csv(path, 5);
  EXPECT_EQ(d.nodes(), m.nodes());
  const auto srcs = d.srcs();
  const auto dsts = d.dsts();
  const auto vols = d.volumes();
  for (std::size_t k = 0; k < vols.size(); ++k) {
    EXPECT_EQ(vols[k], m.volume(srcs[k], dsts[k])) << k;
  }
  EXPECT_EQ(d.traffic(), m.traffic());
}

TEST(DemandIo, RejectsTheContractViolations) {
  const auto path = temp_path("demand3.csv");
  write_file(path, "0,0,5\n");  // src == dst (Network::append_links contract)
  EXPECT_THROW(demand_from_csv(path), std::invalid_argument);
  write_file(path, "0,1,-5\n");
  EXPECT_THROW(demand_from_csv(path), std::invalid_argument);
  write_file(path, "0,7,5\n");
  EXPECT_THROW(demand_from_csv(path, 4), std::invalid_argument);
  write_file(path, "0,1\n");
  EXPECT_THROW(demand_from_csv(path), std::invalid_argument);
  EXPECT_THROW(demand_from_csv(temp_path("missing.csv")), std::runtime_error);
}

TEST(DemandIo, RoundTripsThroughCsv) {
  Demand d(6);
  d.add(5, 0, 0.5);
  d.add(1, 4, 123456.789);
  d.add(5, 0, 2.25);
  const auto path = temp_path("demand4.csv");
  demand_to_csv(d, path);
  const Demand back = demand_from_csv(path, 6);
  ASSERT_EQ(back.size(), d.size());
  EXPECT_EQ(back.volume(5, 0), d.volume(5, 0));
  EXPECT_EQ(back.volume(1, 4), d.volume(1, 4));
}

}  // namespace
}  // namespace ccf::net
