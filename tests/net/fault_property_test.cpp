// Fault-determinism properties (ISSUE 4):
//  * same seed + same FaultSchedule => bit-identical CCTs, event counts and
//    per-epoch traces across engine modes and advance-parallelism settings;
//  * an empty FaultSchedule is indistinguishable — bit-for-bit — from never
//    installing one (the fault machinery must be fully gated);
//  * faulted runs conserve bytes and always terminate (random schedules
//    restore every degradation).
// Comparisons are == on doubles by design: the engines promise bit-identical
// event sequences, and any divergence under faults is a staleness bug.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "net/rack.hpp"
#include "net/simulator.hpp"
#include "testing/invariants.hpp"
#include "util/rng.hpp"

namespace ccf::net {
namespace {

FlowMatrix random_matrix(std::size_t n, util::Pcg32& rng, double density,
                         double max_volume) {
  FlowMatrix m(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && rng.uniform01() < density) {
        m.set(i, j, rng.uniform(1.0, max_volume));
      }
    }
  }
  return m;
}

std::vector<CoflowSpec> make_workload(std::size_t nodes, std::uint64_t seed) {
  util::Pcg32 rng(util::derive_seed(seed, 21), 21);
  std::vector<CoflowSpec> specs;
  for (std::size_t c = 0; c < 6; ++c) {
    specs.emplace_back("c" + std::to_string(c), rng.uniform(0.0, 4.0),
                       random_matrix(nodes, rng, 0.4, 150.0));
  }
  return specs;
}

FaultSchedule make_faults(const Network& network, std::uint64_t seed) {
  util::Pcg32 rng(util::derive_seed(seed, 22), 22);
  RandomFaultOptions opts;
  opts.horizon = 10.0;
  opts.outage = 3.0;
  return FaultSchedule::random(network, opts, rng);
}

struct RunSetup {
  std::string allocator = "madd";
  bool rack = false;
  SimEngine engine = SimEngine::kIncremental;
  std::size_t parallel_threshold = SimConfig{}.parallel_advance_threshold;
  bool install_faults = true;   ///< false: never call set_faults at all
  bool empty_schedule = false;  ///< true: install an empty FaultSchedule
  FaultOptions options;
};

struct RunResult {
  SimReport report;
  std::vector<TraceEvent> trace;
};

RunResult run(std::uint64_t seed, const RunSetup& setup) {
  SimConfig config;
  config.engine = setup.engine;
  config.parallel_advance_threshold = setup.parallel_threshold;
  config.record_trace = true;
  auto network =
      setup.rack ? std::shared_ptr<const Network>(new RackFabric(3, 2, 10.0))
                 : std::shared_ptr<const Network>(new Fabric(6, 10.0));
  Simulator sim(network, testing::make_invariant_checked(setup.allocator),
                config);
  if (setup.install_faults) {
    sim.set_faults(setup.empty_schedule ? FaultSchedule{}
                                        : make_faults(*network, seed),
                   setup.options);
  }
  for (const auto& spec : make_workload(6, seed)) sim.add_coflow(spec);
  RunResult result;
  result.report = sim.run();
  result.trace = sim.trace();
  return result;
}

/// Bit-exact equality of everything observable about a run.
void expect_identical(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.report.events, b.report.events);
  EXPECT_EQ(a.report.makespan, b.report.makespan);
  EXPECT_EQ(a.report.total_bytes, b.report.total_bytes);
  EXPECT_EQ(a.report.fault_events, b.report.fault_events);
  EXPECT_EQ(a.report.replacements, b.report.replacements);
  ASSERT_EQ(a.report.coflows.size(), b.report.coflows.size());
  for (std::size_t c = 0; c < a.report.coflows.size(); ++c) {
    EXPECT_EQ(a.report.coflows[c].completion, b.report.coflows[c].completion)
        << a.report.coflows[c].name;
    EXPECT_EQ(a.report.coflows[c].bytes, b.report.coflows[c].bytes)
        << a.report.coflows[c].name;
    EXPECT_EQ(a.report.coflows[c].rejected, b.report.coflows[c].rejected);
  }
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t e = 0; e < a.trace.size(); ++e) {
    EXPECT_EQ(a.trace[e].time, b.trace[e].time) << "event " << e;
    EXPECT_EQ(a.trace[e].active_flows, b.trace[e].active_flows);
    EXPECT_EQ(a.trace[e].completed_flows, b.trace[e].completed_flows);
  }
}

using Combo = std::tuple<std::uint64_t, std::string>;

class FaultDeterminism : public ::testing::TestWithParam<Combo> {};

TEST_P(FaultDeterminism, RepeatRunsAreBitIdentical) {
  const auto& [seed, allocator] = GetParam();
  for (const bool rack : {false, true}) {
    RunSetup setup;
    setup.allocator = allocator;
    setup.rack = rack;
    expect_identical(run(seed, setup), run(seed, setup));
  }
}

TEST_P(FaultDeterminism, EngineModesAgreeBitForBit) {
  const auto& [seed, allocator] = GetParam();
  RunSetup ref;
  ref.allocator = allocator;
  ref.engine = SimEngine::kReference;
  RunSetup inc = ref;
  inc.engine = SimEngine::kIncremental;
  const RunResult a = run(seed, ref);
  const RunResult b = run(seed, inc);
  expect_identical(a, b);
  EXPECT_GT(b.report.fault_events, 0u);
}

TEST_P(FaultDeterminism, AdvanceThresholdDoesNotChangeResults) {
  // At this scale (< one advance chunk) both settings execute the same
  // sequential advance, so the runs must be bit-identical — this pins the
  // threshold plumbing; the chunked path itself is covered by the dedicated
  // large-scale test below.
  const auto& [seed, allocator] = GetParam();
  RunSetup seq;
  seq.allocator = allocator;
  RunSetup par = seq;
  par.parallel_threshold = 4;
  expect_identical(run(seed, seq), run(seed, par));
}

TEST_P(FaultDeterminism, ReplacementRunsAreDeterministicToo) {
  const auto& [seed, allocator] = GetParam();
  RunSetup setup;
  setup.allocator = allocator;
  setup.options.replace_on_failure = true;
  setup.options.replace_threshold = 0.0;
  const RunResult a = run(seed, setup);
  expect_identical(a, run(seed, setup));
}

TEST_P(FaultDeterminism, EmptyScheduleMatchesNoScheduleBitForBit) {
  const auto& [seed, allocator] = GetParam();
  for (const auto engine : {SimEngine::kIncremental, SimEngine::kReference}) {
    RunSetup none;
    none.allocator = allocator;
    none.engine = engine;
    none.install_faults = false;
    RunSetup empty = none;
    empty.install_faults = true;
    empty.empty_schedule = true;
    const RunResult a = run(seed, none);
    const RunResult b = run(seed, empty);
    expect_identical(a, b);
    EXPECT_EQ(b.report.fault_events, 0u);
  }
}

TEST(FaultParallelAdvance, ChunkedAdvanceAgreesWithSequentialUnderFaults) {
  // With > 2048 active flows every epoch takes the chunked parallel advance
  // (util::parallel_for, deterministic chunk boundaries). Event times,
  // counts and completions must match the sequential path bit-for-bit; byte
  // totals may differ by summation-order ulps across chunk merges, so those
  // compare within 1e-9 relative.
  for (const std::string allocator : {"fair", "madd"}) {
    util::Pcg32 rng(util::derive_seed(99, 23), 23);
    const FlowMatrix m = random_matrix(48, rng, 1.0, 50.0);
    auto run_big = [&](std::size_t threshold) {
      SimConfig config;
      config.parallel_advance_threshold = threshold;
      config.record_trace = true;
      Simulator sim(Fabric(48, 10.0),
                    testing::make_invariant_checked(allocator), config);
      FaultSchedule s;
      s.slow_node(1.0, 3, 0.5).restore_node(40.0, 3);
      s.fail_port(2.0, 7, PortSide::kIngress).restore_port(30.0, 7);
      sim.set_faults(s);
      sim.add_coflow(CoflowSpec("big", 0.0, m));
      RunResult result;
      result.report = sim.run();
      result.trace = sim.trace();
      return result;
    };
    const RunResult seq = run_big(1u << 20);
    const RunResult par = run_big(4);
    ASSERT_EQ(seq.report.events, par.report.events) << allocator;
    ASSERT_EQ(seq.trace.size(), par.trace.size()) << allocator;
    for (std::size_t e = 0; e < seq.trace.size(); ++e) {
      EXPECT_EQ(seq.trace[e].time, par.trace[e].time) << allocator;
      EXPECT_EQ(seq.trace[e].active_flows, par.trace[e].active_flows);
      EXPECT_EQ(seq.trace[e].completed_flows, par.trace[e].completed_flows);
    }
    EXPECT_EQ(seq.report.makespan, par.report.makespan) << allocator;
    EXPECT_EQ(seq.report.fault_events, par.report.fault_events);
    EXPECT_NEAR(seq.report.total_bytes, par.report.total_bytes,
                1e-9 * (1.0 + seq.report.total_bytes));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FaultDeterminism,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values("fair", "madd", "varys", "aalo",
                                         "varys-edf")),
    [](const ::testing::TestParamInfo<Combo>& info) {
      std::string alloc = std::get<1>(info.param);
      for (char& ch : alloc) {
        if (ch == '-') ch = '_';  // gtest names must be identifiers
      }
      return "seed" + std::to_string(std::get<0>(info.param)) + "_" + alloc;
    });

}  // namespace
}  // namespace ccf::net
