// Property sweep for the deadline allocator: over random batches of
// deadline coflows, everything varys-edf admits finishes by its deadline —
// the predictability guarantee that defines Varys's deadline mode.
#include <gtest/gtest.h>

#include "net/metrics.hpp"
#include "net/simulator.hpp"
#include "util/rng.hpp"

namespace ccf::net {
namespace {

class DeadlineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeadlineProperty, EveryAdmittedCoflowMeetsItsDeadline) {
  util::Pcg32 rng(util::derive_seed(GetParam(), 111), 111);
  const std::size_t n = 4 + rng.bounded(8);
  const Fabric fabric(n, 10.0);
  Simulator sim(fabric, make_allocator("varys-edf"));

  double arrival = 0.0;
  const std::size_t count = 4 + rng.bounded(8);
  for (std::size_t c = 0; c < count; ++c) {
    FlowMatrix m(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i != j && rng.uniform01() < 0.3) {
          m.set(i, j, rng.uniform(1.0, 200.0));
        }
      }
    }
    if (m.traffic() <= 0.0) m.set(0, 1, 50.0);
    const double lone = gamma_bound(m, fabric);
    CoflowSpec spec("c" + std::to_string(c), arrival, std::move(m));
    // Deadlines from infeasible (0.5x) to generous (3x) of the lone bound.
    spec.deadline = lone * rng.uniform(0.5, 3.0);
    sim.add_coflow(std::move(spec));
    arrival += rng.uniform(0.0, lone);
  }

  const SimReport r = sim.run();
  std::size_t admitted = 0;
  for (const CoflowResult& c : r.coflows) {
    if (c.rejected) {
      EXPECT_DOUBLE_EQ(c.cct(), 0.0) << c.name;  // rejected at arrival
      continue;
    }
    ++admitted;
    EXPECT_TRUE(c.met_deadline())
        << c.name << " completed " << c.completion << " deadline "
        << c.deadline;
  }
  // Sanity: the generous deadlines should let at least one coflow in.
  EXPECT_GE(admitted, 1u);
}

TEST_P(DeadlineProperty, RejectionsNeverConsumeBandwidth) {
  util::Pcg32 rng(util::derive_seed(GetParam(), 112), 112);
  const std::size_t n = 5;
  const Fabric fabric(n, 10.0);
  Simulator sim(fabric, make_allocator("varys-edf"));
  double expected_bytes = 0.0;
  for (std::size_t c = 0; c < 6; ++c) {
    FlowMatrix m(n);
    m.set(c % n, (c + 1) % n, rng.uniform(50.0, 150.0));
    const double lone = gamma_bound(m, fabric);
    const bool feasible = c % 2 == 0;
    if (feasible) expected_bytes += m.traffic();
    CoflowSpec spec("c" + std::to_string(c), 0.0, std::move(m));
    // Same-port coflows arriving together: generous vs absurd deadlines.
    spec.deadline = feasible ? lone * 20.0 : lone * 0.01;
    sim.add_coflow(std::move(spec));
  }
  const SimReport r = sim.run();
  double delivered = 0.0;
  for (const CoflowResult& c : r.coflows) {
    if (!c.rejected) delivered += c.bytes;
  }
  EXPECT_NEAR(r.total_bytes, delivered, 1e-6 * delivered + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeadlineProperty,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace ccf::net
