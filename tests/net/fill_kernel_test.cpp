// Pins the vectorized max-min fill bottleneck sweep against the scalar
// reference kernel: for every allocator, a full simulation run must be
// bit-identical under either kernel (same epochs, same completion times —
// the vectorized sweep computes the same shares, picks the same link and
// freezes in the same order by construction; this suite is the oracle for
// that claim). Also covers the sparse coflow-spec ingestion path against the
// dense matrix path on the same trace.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "net/allocator.hpp"
#include "net/fabric.hpp"
#include "net/simulator.hpp"
#include "net/trace.hpp"
#include "util/rng.hpp"

namespace ccf::net {
namespace {

constexpr std::size_t kRacks = 40;

CoflowTrace make_trace() {
  SyntheticTraceOptions opt;
  opt.racks = kRacks;
  opt.coflows = 36;
  opt.duration_seconds = 4.0;
  util::Pcg32 rng(2024, 7);
  return generate_synthetic_trace(opt, rng);
}

/// Restores the process-wide kernel selection on scope exit so a failing
/// assertion cannot leak kScalarReference into other suites.
class KernelGuard {
 public:
  explicit KernelGuard(detail::FillKernel k)
      : saved_(detail::maxmin_fill_kernel()) {
    detail::set_maxmin_fill_kernel(k);
  }
  ~KernelGuard() { detail::set_maxmin_fill_kernel(saved_); }

 private:
  detail::FillKernel saved_;
};

SimReport run_with_kernel(const std::string& allocator,
                          detail::FillKernel kernel, SimEngine engine) {
  KernelGuard guard(kernel);
  SimConfig cfg;
  cfg.engine = engine;
  Simulator sim(Fabric(kRacks), make_allocator(allocator), cfg);
  for (CoflowSpec& spec : to_coflow_specs(make_trace())) {
    sim.add_coflow(std::move(spec));
  }
  return sim.run();
}

class FillKernelEquivalence
    : public ::testing::TestWithParam<std::string> {};

TEST_P(FillKernelEquivalence, VectorizedMatchesScalarBitForBit) {
  for (const SimEngine engine :
       {SimEngine::kIncremental, SimEngine::kReference}) {
    const SimReport vec =
        run_with_kernel(GetParam(), detail::FillKernel::kVectorized, engine);
    const SimReport ref = run_with_kernel(
        GetParam(), detail::FillKernel::kScalarReference, engine);
    ASSERT_EQ(vec.events, ref.events);
    ASSERT_EQ(vec.coflows.size(), ref.coflows.size());
    EXPECT_EQ(vec.makespan, ref.makespan);
    EXPECT_EQ(vec.total_bytes, ref.total_bytes);
    for (std::size_t c = 0; c < vec.coflows.size(); ++c) {
      EXPECT_EQ(vec.coflows[c].completion, ref.coflows[c].completion)
          << "coflow " << vec.coflows[c].name;
      EXPECT_EQ(vec.coflows[c].rejected, ref.coflows[c].rejected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Allocators, FillKernelEquivalence,
                         ::testing::Values("fair", "madd", "varys", "aalo",
                                           "varys-edf"),
                         [](const auto& param_info) {
                           std::string n = param_info.param;
                           for (char& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

class SparseSpecEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(SparseSpecEquivalence, SparseIngestMatchesDense) {
  // Same trace through both ingestion paths. The flow sets are identical but
  // their intra-coflow order differs (matrix row-major vs reducer-major), so
  // per-coflow CCTs agree to accumulated rounding, not bit-for-bit.
  const CoflowTrace trace = make_trace();
  SimReport dense, sparse;
  {
    Simulator sim(Fabric(kRacks), make_allocator(GetParam()));
    for (CoflowSpec& spec : to_coflow_specs(trace)) {
      sim.add_coflow(std::move(spec));
    }
    dense = sim.run();
  }
  {
    Simulator sim(Fabric(kRacks), make_allocator(GetParam()));
    for (SparseCoflowSpec& spec : to_sparse_coflow_specs(trace)) {
      sim.add_coflow(std::move(spec));
    }
    sparse = sim.run();
  }
  ASSERT_EQ(sparse.coflows.size(), dense.coflows.size());
  for (std::size_t c = 0; c < dense.coflows.size(); ++c) {
    EXPECT_EQ(sparse.coflows[c].flows, dense.coflows[c].flows);
    // Same volumes summed in a different order: ulp-level divergence only.
    EXPECT_NEAR(sparse.coflows[c].bytes, dense.coflows[c].bytes,
                1e-9 * dense.coflows[c].bytes);
    EXPECT_NEAR(sparse.coflows[c].completion, dense.coflows[c].completion,
                1e-6 * (1.0 + dense.coflows[c].completion))
        << "coflow " << dense.coflows[c].name;
  }
}

INSTANTIATE_TEST_SUITE_P(Allocators, SparseSpecEquivalence,
                         ::testing::Values("madd", "varys", "aalo"));

}  // namespace
}  // namespace ccf::net
