#include "net/simulator.hpp"

#include <gtest/gtest.h>

#include "net/metrics.hpp"

namespace ccf::net {
namespace {

FlowMatrix single_flow(double vol) {
  FlowMatrix m(2);
  m.set(0, 1, vol);
  return m;
}

TEST(Simulator, SingleFlowTakesVolumeOverRate) {
  Simulator sim(Fabric(2, 10.0), make_allocator("madd"));
  sim.add_coflow(CoflowSpec("c", 0.0, single_flow(100.0)));
  const SimReport r = sim.run();
  ASSERT_EQ(r.coflows.size(), 1u);
  EXPECT_NEAR(r.coflows[0].cct(), 10.0, 1e-9);
  EXPECT_NEAR(r.makespan, 10.0, 1e-9);
  EXPECT_NEAR(r.total_bytes, 100.0, 1e-6);
}

TEST(Simulator, ArrivalDelaysCompletion) {
  Simulator sim(Fabric(2, 10.0), make_allocator("madd"));
  sim.add_coflow(CoflowSpec("late", 5.0, single_flow(100.0)));
  const SimReport r = sim.run();
  EXPECT_NEAR(r.coflows[0].completion, 15.0, 1e-9);
  EXPECT_NEAR(r.coflows[0].cct(), 10.0, 1e-9);
}

TEST(Simulator, MaddCctEqualsGammaForPaperExample) {
  // SP1 of Fig. 2(c): CCT must be 3 time units on unit ports.
  FlowMatrix m(3);
  m.set(0, 1, 3.0);
  m.set(1, 0, 2.0);
  m.set(1, 2, 1.0);
  m.set(2, 0, 1.0);
  const double gamma = gamma_bound(m, Fabric(3, 1.0));
  Simulator sim(Fabric(3, 1.0), make_allocator("madd"));
  sim.add_coflow(CoflowSpec("sp1", 0.0, std::move(m)));
  const SimReport r = sim.run();
  EXPECT_NEAR(r.coflows[0].cct(), gamma, 1e-9);
  EXPECT_NEAR(r.coflows[0].cct(), 3.0, 1e-9);
}

TEST(Simulator, SingleCoflowMaddIsOneEvent) {
  FlowMatrix m(4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      if (i != j) {
        m.set(i, j, 10.0 + static_cast<double>(i) + 2.0 * static_cast<double>(j));
      }
    }
  }
  Simulator sim(Fabric(4, 1.0), make_allocator("madd"));
  sim.add_coflow(CoflowSpec("c", 0.0, std::move(m)));
  const SimReport r = sim.run();
  EXPECT_EQ(r.events, 1u);  // MADD: every flow ends at Γ simultaneously
}

TEST(Simulator, FairSharingSequentialCompletions) {
  // Two flows from node 0: fair sharing splits the egress, so the smaller
  // finishes at 2*vol_small/cap... then the larger speeds up.
  FlowMatrix m(3);
  m.set(0, 1, 10.0);
  m.set(0, 2, 30.0);
  Simulator sim(Fabric(3, 10.0), make_allocator("fair"));
  sim.add_coflow(CoflowSpec("c", 0.0, std::move(m)));
  const SimReport r = sim.run();
  // Phase 1: both at rate 5 until small one done at t=2 (10/5). Phase 2:
  // large has 20 left at rate 10 -> done at t=4.
  EXPECT_NEAR(r.coflows[0].cct(), 4.0, 1e-9);
  EXPECT_EQ(r.events, 2u);
}

TEST(Simulator, TwoCoflowsFifoUnderMadd) {
  Simulator sim(Fabric(2, 10.0), make_allocator("madd"));
  sim.add_coflow(CoflowSpec("first", 0.0, single_flow(100.0)));
  sim.add_coflow(CoflowSpec("second", 0.0, single_flow(50.0)));
  const SimReport r = sim.run();
  // FIFO: first runs alone (10 s), then second (5 s).
  EXPECT_NEAR(r.cct_of("first"), 10.0, 1e-9);
  EXPECT_NEAR(r.cct_of("second"), 15.0, 1e-9);
  EXPECT_NEAR(r.makespan, 15.0, 1e-9);
}

TEST(Simulator, VarysReordersBySize) {
  Simulator sim(Fabric(2, 10.0), make_allocator("varys"));
  sim.add_coflow(CoflowSpec("big", 0.0, single_flow(100.0)));
  sim.add_coflow(CoflowSpec("small", 0.0, single_flow(50.0)));
  const SimReport r = sim.run();
  // SEBF: small first (5 s), big afterwards (15 s total).
  EXPECT_NEAR(r.cct_of("small"), 5.0, 1e-9);
  EXPECT_NEAR(r.cct_of("big"), 15.0, 1e-9);
}

TEST(Simulator, BytesConservedAcrossAllocators) {
  for (const char* name : {"fair", "madd", "varys", "aalo"}) {
    FlowMatrix m(3);
    m.set(0, 1, 25.0);
    m.set(1, 2, 35.0);
    m.set(2, 0, 45.0);
    Simulator sim(Fabric(3, 5.0), make_allocator(name));
    sim.add_coflow(CoflowSpec("c", 0.0, std::move(m)));
    const SimReport r = sim.run();
    EXPECT_NEAR(r.total_bytes, 105.0, 1e-6) << name;
  }
}

TEST(Simulator, EmptyCoflowCompletesAtArrival) {
  Simulator sim(Fabric(2, 1.0), make_allocator("madd"));
  sim.add_coflow(CoflowSpec("empty", 2.0, FlowMatrix(2)));
  const SimReport r = sim.run();
  EXPECT_NEAR(r.coflows[0].completion, 2.0, 1e-9);
  EXPECT_NEAR(r.coflows[0].cct(), 0.0, 1e-9);
}

TEST(Simulator, NoCoflowsRunsToEmptyReport) {
  Simulator sim(Fabric(2, 1.0), make_allocator("madd"));
  const SimReport r = sim.run();
  EXPECT_TRUE(r.coflows.empty());
  EXPECT_DOUBLE_EQ(r.makespan, 0.0);
}

TEST(Simulator, GapBetweenCoflowsIsSkipped) {
  Simulator sim(Fabric(2, 10.0), make_allocator("madd"));
  sim.add_coflow(CoflowSpec("a", 0.0, single_flow(10.0)));   // done at 1
  sim.add_coflow(CoflowSpec("b", 100.0, single_flow(10.0)));  // idle gap
  const SimReport r = sim.run();
  EXPECT_NEAR(r.cct_of("a"), 1.0, 1e-9);
  EXPECT_NEAR(r.cct_of("b"), 1.0, 1e-9);
  EXPECT_NEAR(r.makespan, 101.0, 1e-9);
}

TEST(Simulator, TraceRecordsEpochs) {
  SimConfig cfg;
  cfg.record_trace = true;
  FlowMatrix m(3);
  m.set(0, 1, 10.0);
  m.set(0, 2, 30.0);
  Simulator sim(Fabric(3, 10.0), make_allocator("fair"), cfg);
  sim.add_coflow(CoflowSpec("c", 0.0, std::move(m)));
  sim.run();
  ASSERT_EQ(sim.trace().size(), 2u);
  EXPECT_NEAR(sim.trace()[0].time, 2.0, 1e-9);
  EXPECT_EQ(sim.trace()[0].completed_flows, 1u);
  EXPECT_NEAR(sim.trace()[1].time, 4.0, 1e-9);
  EXPECT_EQ(sim.trace()[1].completed_flows, 2u);
}

TEST(Simulator, RejectsApiMisuse) {
  Simulator sim(Fabric(2, 1.0), make_allocator("madd"));
  EXPECT_THROW(sim.add_coflow(CoflowSpec("bad", 0.0, FlowMatrix(3))),
               std::invalid_argument);
  EXPECT_THROW(sim.add_coflow(CoflowSpec("bad", -1.0, FlowMatrix(2))),
               std::invalid_argument);
  sim.run();
  EXPECT_THROW(sim.run(), std::logic_error);
  EXPECT_THROW(sim.add_coflow(CoflowSpec("late", 0.0, FlowMatrix(2))),
               std::logic_error);
  EXPECT_THROW(Simulator(Fabric(2, 1.0), nullptr), std::invalid_argument);
}

TEST(Simulator, PerFlowStartOffsetsDelayIndividualFlows) {
  // Online coflow (§II-B): two flows of one coflow start 0 s and 5 s after
  // arrival. Disjoint ports, rate 10: flow A done at 1 s, flow B at 5 + 1 s.
  FlowMatrix m(4);
  m.set(0, 1, 10.0);
  m.set(2, 3, 10.0);
  FlowMatrix offsets(4);
  offsets.set(2, 3, 5.0);
  CoflowSpec spec("online", 0.0, std::move(m));
  spec.start_offsets = std::move(offsets);
  Simulator sim(Fabric(4, 10.0), make_allocator("madd"));
  sim.add_coflow(std::move(spec));
  const SimReport r = sim.run();
  EXPECT_NEAR(r.coflows[0].cct(), 6.0, 1e-9);
}

TEST(Simulator, StaggeredFlowsShareThePortSequentially) {
  // Same egress port; second flow starts after the first finished: no
  // contention, total = 1 + 1 with a 3 s gap in between.
  FlowMatrix m(3);
  m.set(0, 1, 10.0);
  m.set(0, 2, 10.0);
  FlowMatrix offsets(3);
  offsets.set(0, 2, 3.0);
  CoflowSpec spec("staggered", 0.0, std::move(m));
  spec.start_offsets = std::move(offsets);
  Simulator sim(Fabric(3, 10.0), make_allocator("fair"));
  sim.add_coflow(std::move(spec));
  const SimReport r = sim.run();
  EXPECT_NEAR(r.coflows[0].cct(), 4.0, 1e-9);
  EXPECT_EQ(r.events, 2u);
}

TEST(Simulator, OffsetsComposeWithCoflowArrival) {
  FlowMatrix m(2);
  m.set(0, 1, 10.0);
  FlowMatrix offsets(2);
  offsets.set(0, 1, 2.0);
  CoflowSpec spec("late", 3.0, std::move(m));
  spec.start_offsets = std::move(offsets);
  Simulator sim(Fabric(2, 10.0), make_allocator("madd"));
  sim.add_coflow(std::move(spec));
  const SimReport r = sim.run();
  // Starts at 3 + 2 = 5, takes 1 s; CCT measured from arrival (3).
  EXPECT_NEAR(r.coflows[0].completion, 6.0, 1e-9);
  EXPECT_NEAR(r.coflows[0].cct(), 3.0, 1e-9);
}

TEST(Simulator, RejectsBadStartOffsets) {
  {
    FlowMatrix m(2);
    m.set(0, 1, 1.0);
    CoflowSpec spec("bad-shape", 0.0, std::move(m));
    spec.start_offsets = FlowMatrix(3);
    Simulator sim(Fabric(2, 1.0), make_allocator("madd"));
    EXPECT_THROW(sim.add_coflow(std::move(spec)), std::invalid_argument);
  }
  {
    FlowMatrix m(2);
    m.set(0, 1, 1.0);
    FlowMatrix offsets(2);
    offsets.set(0, 1, -1.0);
    CoflowSpec spec("negative", 0.0, std::move(m));
    spec.start_offsets = std::move(offsets);
    Simulator sim(Fabric(2, 1.0), make_allocator("madd"));
    EXPECT_THROW(sim.add_coflow(std::move(spec)), std::invalid_argument);
  }
}

TEST(SimReportTest, AverageCctAndLookup) {
  SimReport r;
  CoflowResult a;
  a.name = "a";
  a.arrival = 0.0;
  a.completion = 4.0;
  CoflowResult b;
  b.name = "b";
  b.arrival = 2.0;
  b.completion = 4.0;
  r.coflows = {a, b};
  EXPECT_DOUBLE_EQ(r.average_cct(), 3.0);
  EXPECT_DOUBLE_EQ(r.cct_of("b"), 2.0);
  EXPECT_THROW(r.cct_of("missing"), std::out_of_range);
}

}  // namespace
}  // namespace ccf::net
