// Property tests on the simulator across random instances: the invariants
// that make the reproduction trustworthy.
//
//  (i)  MADD's simulated single-coflow CCT equals the analytic bound Γ.
//  (ii) No allocator beats Γ; fair sharing is >= Γ.
//  (iii) Bytes are conserved for every allocator.
//  (iv) For multiple coflows, Varys's average CCT is <= FIFO MADD's on
//       same-arrival batches (SEBF dominance on these instances).
#include <gtest/gtest.h>

#include "net/metrics.hpp"
#include "net/simulator.hpp"
#include "util/rng.hpp"

namespace ccf::net {
namespace {

FlowMatrix random_matrix(std::size_t n, util::Pcg32& rng, double density,
                         double max_volume) {
  FlowMatrix m(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && rng.uniform01() < density) {
        m.set(i, j, rng.uniform(1.0, max_volume));
      }
    }
  }
  return m;
}

class SimProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimProperty, MaddMatchesGammaExactly) {
  util::Pcg32 rng(util::derive_seed(GetParam(), 1), 1);
  const std::size_t n = 3 + GetParam() % 13;
  FlowMatrix m = random_matrix(n, rng, 0.7, 1000.0);
  const Fabric fabric(n, 10.0);
  const double gamma = gamma_bound(m, fabric);
  Simulator sim(fabric, make_allocator("madd"));
  sim.add_coflow(CoflowSpec("c", 0.0, std::move(m)));
  const SimReport r = sim.run();
  EXPECT_NEAR(r.coflows[0].cct(), gamma, 1e-6 * gamma + 1e-9);
}

TEST_P(SimProperty, NoAllocatorBeatsGamma) {
  for (const char* name : {"fair", "madd", "varys", "aalo"}) {
    util::Pcg32 rng(util::derive_seed(GetParam(), 2), 2);
    const std::size_t n = 3 + GetParam() % 10;
    FlowMatrix m = random_matrix(n, rng, 0.5, 500.0);
    const Fabric fabric(n, 7.0);
    const double gamma = gamma_bound(m, fabric);
    Simulator sim(fabric, make_allocator(name));
    sim.add_coflow(CoflowSpec("c", 0.0, std::move(m)));
    const SimReport r = sim.run();
    EXPECT_GE(r.coflows[0].cct(), gamma * (1.0 - 1e-9)) << name;
  }
}

TEST_P(SimProperty, BytesConserved) {
  for (const char* name : {"fair", "madd", "varys", "aalo"}) {
    util::Pcg32 rng(util::derive_seed(GetParam(), 3), 3);
    const std::size_t n = 4 + GetParam() % 8;
    FlowMatrix m = random_matrix(n, rng, 0.6, 800.0);
    const double traffic = m.traffic();
    Simulator sim(Fabric(n, 5.0), make_allocator(name));
    sim.add_coflow(CoflowSpec("c", 0.0, std::move(m)));
    const SimReport r = sim.run();
    EXPECT_NEAR(r.total_bytes, traffic, 1e-6 * traffic + 1e-9) << name;
  }
}

TEST_P(SimProperty, FairSharingNeverFasterThanMaddForSingleCoflow) {
  util::Pcg32 rng(util::derive_seed(GetParam(), 4), 4);
  const std::size_t n = 3 + GetParam() % 10;
  const FlowMatrix m = random_matrix(n, rng, 0.8, 300.0);

  Simulator madd(Fabric(n, 4.0), make_allocator("madd"));
  madd.add_coflow(CoflowSpec("c", 0.0, m));
  Simulator fair(Fabric(n, 4.0), make_allocator("fair"));
  fair.add_coflow(CoflowSpec("c", 0.0, m));

  const double cct_madd = madd.run().coflows[0].cct();
  const double cct_fair = fair.run().coflows[0].cct();
  EXPECT_GE(cct_fair, cct_madd * (1.0 - 1e-9));
}

TEST_P(SimProperty, VarysAverageCctNotWorseThanFifoOnBatch) {
  util::Pcg32 rng(util::derive_seed(GetParam(), 5), 5);
  const std::size_t n = 6;
  std::vector<FlowMatrix> batch;
  for (int c = 0; c < 4; ++c) {
    batch.push_back(random_matrix(n, rng, 0.5, 100.0 * (c + 1)));
  }

  auto run_with = [&](const char* name) {
    Simulator sim(Fabric(n, 3.0), make_allocator(name));
    for (std::size_t c = 0; c < batch.size(); ++c) {
      sim.add_coflow(CoflowSpec("c" + std::to_string(c), 0.0, batch[c]));
    }
    return sim.run().average_cct();
  };

  // SEBF is a (very good) heuristic, not provably dominant, so allow a small
  // slack factor instead of asserting strict dominance.
  EXPECT_LE(run_with("varys"), run_with("madd") * 1.05 + 1e-9);
}

TEST_P(SimProperty, MakespanIndependentOfWorkConservingOrderOnBatch) {
  // All work-conserving single-path schedules have the same total bytes and,
  // with all coflows present from t=0 on a shared fabric, the makespan can
  // differ across allocators but never beats the aggregate Γ of the union.
  util::Pcg32 rng(util::derive_seed(GetParam(), 6), 6);
  const std::size_t n = 5;
  std::vector<FlowMatrix> batch;
  FlowMatrix combined(n);
  for (int c = 0; c < 3; ++c) {
    batch.push_back(random_matrix(n, rng, 0.6, 200.0));
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        combined.add(i, j, batch.back().volume(i, j));
      }
    }
  }
  const Fabric fabric(n, 4.0);
  const double gamma_union = gamma_bound(combined, fabric);
  for (const char* name : {"fair", "madd", "varys", "aalo"}) {
    Simulator sim(fabric, make_allocator(name));
    for (std::size_t c = 0; c < batch.size(); ++c) {
      sim.add_coflow(CoflowSpec("c" + std::to_string(c), 0.0, batch[c]));
    }
    EXPECT_GE(sim.run().makespan, gamma_union * (1.0 - 1e-9)) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimProperty,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace ccf::net
