// FaultSchedule semantics + simulator fault handling (DESIGN.md §6): timed
// degradations change completion times by exactly the analytic amount,
// total outages pause (not starve) the run, port failures trigger the
// re-placement hook, and every run passes the invariant checker.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "net/simulator.hpp"
#include "testing/invariants.hpp"
#include "util/rng.hpp"

namespace ccf::net {
namespace {

/// One-coflow helper on a unit-rate flat fabric.
SimReport run_faulted(std::size_t nodes, const FlowMatrix& flows,
                      const FaultSchedule& schedule, FaultOptions options = {},
                      const std::string& allocator = "madd",
                      double arrival = 0.0) {
  SimConfig config;
  config.record_trace = true;
  Simulator sim(Fabric(nodes, 1.0), testing::make_invariant_checked(allocator),
                config);
  sim.set_faults(schedule, options);
  sim.add_coflow(CoflowSpec("job", arrival, flows));
  return sim.run();
}

TEST(FaultScheduleTest, BuildersKeepEventsTimeSortedAndStable) {
  FaultSchedule s;
  s.degrade_link(5.0, 0, 0.5);
  s.degrade_link(1.0, 1, 0.2);
  s.restore_link(5.0, 0);  // same time as the degrade: applies after it
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.events()[0].time, 1.0);
  EXPECT_EQ(s.events()[1].kind, FaultKind::kDegradeLink);
  EXPECT_EQ(s.events()[2].kind, FaultKind::kRestoreLink);
  EXPECT_EQ(s.events()[1].time, s.events()[2].time);
}

TEST(FaultScheduleTest, ValidateRejectsOutOfRangeIds) {
  const Fabric fabric(3, 1.0);
  FaultSchedule bad_link;
  bad_link.degrade_link(1.0, 99, 0.5);
  EXPECT_THROW(bad_link.validate(fabric), std::invalid_argument);
  FaultSchedule bad_node;
  bad_node.fail_port(1.0, 7);
  EXPECT_THROW(bad_node.validate(fabric), std::invalid_argument);
  FaultSchedule ok;
  ok.degrade_link(1.0, 5, 0.5).slow_node(2.0, 2, 0.5);
  EXPECT_NO_THROW(ok.validate(fabric));
}

TEST(FaultScheduleTest, BuilderArgumentValidation) {
  FaultSchedule s;
  EXPECT_THROW(s.degrade_link(-1.0, 0, 0.5), std::invalid_argument);
  EXPECT_THROW(s.degrade_link(1.0, 0, 1.5), std::invalid_argument);
  EXPECT_THROW(s.degrade_link(1.0, 0, -0.1), std::invalid_argument);
}

TEST(FaultScheduleTest, RandomIsSeedReproducibleAndRestoresEverything) {
  const Fabric fabric(8, 1.0);
  RandomFaultOptions opts;
  util::Pcg32 a(42, 1), b(42, 1);
  const FaultSchedule sa = FaultSchedule::random(fabric, opts, a);
  const FaultSchedule sb = FaultSchedule::random(fabric, opts, b);
  ASSERT_EQ(sa.size(), sb.size());
  EXPECT_EQ(sa.size(),
            2 * (opts.link_degradations + opts.port_failures + opts.stragglers));
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa.events()[i].time, sb.events()[i].time);
    EXPECT_EQ(sa.events()[i].kind, sb.events()[i].kind);
    EXPECT_EQ(sa.events()[i].link, sb.events()[i].link);
    EXPECT_EQ(sa.events()[i].node, sb.events()[i].node);
    EXPECT_EQ(sa.events()[i].factor, sb.events()[i].factor);
  }
  EXPECT_NO_THROW(sa.validate(fabric));
}

TEST(SimulatorFaultTest, MidRunDegradationStretchesCompletionExactly) {
  // 10 B over a unit port finishes at t=10... until the egress link halves
  // at t=5: 5 B remain at rate 0.5 -> 10 more seconds, CCT 15.
  FlowMatrix flows(2);
  flows.set(0, 1, 10.0);
  FaultSchedule s;
  s.degrade_link(5.0, /*egress of node 0=*/0, 0.5);
  const SimReport r = run_faulted(2, flows, s);
  EXPECT_NEAR(r.cct_of("job"), 15.0, 1e-9);
  EXPECT_EQ(r.fault_events, 1u);
  EXPECT_EQ(r.replacements, 0u);
}

TEST(SimulatorFaultTest, TotalOutagePausesInsteadOfStarving) {
  // Hard failure of the only destination port: every flow sits at rate 0
  // until the scheduled restore — the engine must treat that as waiting,
  // not starvation. 10 B: 5 s before, 3 s dark, 5 s after -> CCT 13.
  FlowMatrix flows(2);
  flows.set(0, 1, 10.0);
  FaultSchedule s;
  s.fail_port(5.0, 1, PortSide::kIngress).restore_port(8.0, 1);
  const SimReport r = run_faulted(2, flows, s);
  EXPECT_NEAR(r.cct_of("job"), 13.0, 1e-9);
  EXPECT_EQ(r.fault_events, 2u);
}

TEST(SimulatorFaultTest, StragglerSlowsBothSides) {
  FlowMatrix flows(2);
  flows.set(0, 1, 40.0);
  FaultSchedule s;
  s.slow_node(0.0, 0, 0.5);  // fault at t=0: applies before the first epoch
  const SimReport r = run_faulted(2, flows, s, {}, "fair");
  EXPECT_NEAR(r.cct_of("job"), 80.0, 1e-9);
}

TEST(SimulatorFaultTest, FaultsPastTheLastCompletionNeverApply) {
  FlowMatrix flows(2);
  flows.set(0, 1, 10.0);
  FaultSchedule s;
  s.fail_port(1e6, 1);
  const SimReport r = run_faulted(2, flows, s);
  EXPECT_NEAR(r.cct_of("job"), 10.0, 1e-9);
  EXPECT_EQ(r.fault_events, 0u);
}

TEST(SimulatorFaultTest, ReplacementBeatsRidingOutAnIngressFailure) {
  // Two 30 B flows into node 2. At t=10 its ingress port dies until t=100.
  // Riding it out: stall 90 s, then drain 50 B at the shared port -> 150.
  // Re-placement moves the 25 B remainders to nodes 1 and 0 -> Γ=25 -> 35.
  FlowMatrix flows(3);
  flows.set(0, 2, 30.0);
  flows.set(1, 2, 30.0);
  FaultSchedule s;
  s.fail_port(10.0, 2, PortSide::kIngress).restore_port(100.0, 2);

  const SimReport stay = run_faulted(3, flows, s);
  EXPECT_NEAR(stay.cct_of("job"), 150.0, 1e-9);
  EXPECT_EQ(stay.replacements, 0u);
  EXPECT_EQ(stay.fault_events, 2u);

  FaultOptions opts;
  opts.replace_on_failure = true;
  const SimReport moved = run_faulted(3, flows, s, opts);
  EXPECT_NEAR(moved.cct_of("job"), 35.0, 1e-9);
  EXPECT_EQ(moved.replacements, 2u);
  EXPECT_LT(moved.cct_of("job"), stay.cct_of("job"));
  // The restore at t=100 lands after the re-placed run already finished.
  EXPECT_EQ(moved.fault_events, 1u);
}

TEST(SimulatorFaultTest, ReplacementCoversNotYetArrivedFlows) {
  // The destination dies before the coflow arrives; with re-placement its
  // flow is re-routed at fault time and never touches the dead port.
  FlowMatrix flows(3);
  flows.set(0, 2, 20.0);
  FaultSchedule s;
  s.fail_port(5.0, 2, PortSide::kIngress).restore_port(1000.0, 2);
  FaultOptions opts;
  opts.replace_on_failure = true;
  const SimReport r = run_faulted(3, flows, s, opts, "madd", /*arrival=*/10.0);
  EXPECT_NEAR(r.cct_of("job"), 20.0, 1e-9);
  EXPECT_EQ(r.replacements, 1u);
}

TEST(SimulatorFaultTest, NoSurvivingDestinationRidesOutTheFault) {
  // Two nodes: the only alternative destination for flow 0->1 is its own
  // source, which re-placement must never pick — the flow waits for the
  // restore instead.
  FlowMatrix flows(2);
  flows.set(0, 1, 10.0);
  FaultSchedule s;
  s.fail_port(5.0, 1, PortSide::kIngress).restore_port(8.0, 1);
  FaultOptions opts;
  opts.replace_on_failure = true;
  const SimReport r = run_faulted(2, flows, s, opts);
  EXPECT_NEAR(r.cct_of("job"), 13.0, 1e-9);
  EXPECT_EQ(r.replacements, 0u);
}

TEST(SimulatorFaultTest, SetFaultsValidates) {
  Simulator sim(Fabric(3, 1.0), make_allocator("madd"));
  FaultSchedule bad;
  bad.degrade_link(1.0, 99, 0.5);
  EXPECT_THROW(sim.set_faults(bad), std::invalid_argument);
  FaultOptions opts;
  opts.replace_threshold = 2.0;
  EXPECT_THROW(sim.set_faults(FaultSchedule{}, opts), std::invalid_argument);
}

TEST(SimulatorFaultTest, DegradeToZeroInvalidatesCachedKeys) {
  // Two staggered coflows under varys (cached Γ keys): the second port's
  // capacity drops to zero mid-run and comes back. If the allocator kept its
  // pre-fault keys/rates the run would either starve or finish too early;
  // the exact CCTs pin the refresh behavior.
  FlowMatrix a(3), b(3);
  a.set(0, 1, 10.0);
  b.set(2, 0, 10.0);  // port-disjoint from a: egress 2, ingress 0
  FaultSchedule s;
  s.fail_port(2.0, 1, PortSide::kIngress).restore_port(6.0, 1);
  SimConfig config;
  Simulator sim(Fabric(3, 1.0), testing::make_invariant_checked("varys"),
                config);
  sim.set_faults(s);
  sim.add_coflow(CoflowSpec("a", 0.0, a));
  sim.add_coflow(CoflowSpec("b", 0.0, b));
  const SimReport r = sim.run();
  // Coflow a: 2 s at rate 1, dark 2..6, finishes its last 8 B by t=14.
  EXPECT_NEAR(r.cct_of("a"), 14.0, 1e-9);
  // Coflow b is untouched by the fault (disjoint ports): CCT 10.
  EXPECT_NEAR(r.cct_of("b"), 10.0, 1e-9);
}

}  // namespace
}  // namespace ccf::net
