#include "net/allocator.hpp"

#include "net/fabric.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ccf::net {
namespace {

Flow make_flow(std::uint32_t src, std::uint32_t dst, double vol,
               std::uint32_t coflow = 0) {
  Flow f;
  f.src = src;
  f.dst = dst;
  f.volume = f.remaining = vol;
  f.coflow = coflow;
  return f;
}

std::vector<CoflowState> started_states(std::size_t count) {
  std::vector<CoflowState> states(count);
  for (std::size_t c = 0; c < count; ++c) {
    states[c].id = static_cast<std::uint32_t>(c);
    states[c].started = true;
  }
  return states;
}

TEST(MakeAllocator, AllKindsAndNames) {
  EXPECT_EQ(make_allocator(AllocatorKind::kFairSharing)->name(), "fair");
  EXPECT_EQ(make_allocator(AllocatorKind::kMadd)->name(), "madd");
  EXPECT_EQ(make_allocator(AllocatorKind::kVarys)->name(), "varys");
  EXPECT_EQ(make_allocator(AllocatorKind::kAalo)->name(), "aalo");
  EXPECT_EQ(make_allocator("fair")->name(), "fair");
  EXPECT_THROW(make_allocator("bogus"), std::invalid_argument);
}

TEST(FairSharing, LoneFlowGetsFullPort) {
  auto alloc = make_allocator("fair");
  std::vector<Flow> flows = {make_flow(0, 1, 100.0)};
  auto states = started_states(1);
  alloc->allocate(flows, states, Fabric(2, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(flows[0].rate, 10.0);
}

TEST(FairSharing, TwoFlowsShareEgressEqually) {
  auto alloc = make_allocator("fair");
  std::vector<Flow> flows = {make_flow(0, 1, 100.0), make_flow(0, 2, 100.0)};
  auto states = started_states(1);
  alloc->allocate(flows, states, Fabric(3, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(flows[0].rate, 5.0);
  EXPECT_DOUBLE_EQ(flows[1].rate, 5.0);
}

TEST(FairSharing, MaxMinGivesLeftoverToUnbottleneckedFlow) {
  // Flows A(0->2), B(1->2) share ingress 2; flow C(1->3) shares egress 1
  // with B. Ingress 2 is the bottleneck: A and B get 5 each; C then gets
  // the remaining egress-1 capacity: 10 - 5 = 5... all 5 here. Use asymmetric
  // capacities to make it interesting.
  auto alloc = make_allocator("fair");
  std::vector<Flow> flows = {make_flow(0, 2, 100.0), make_flow(1, 2, 100.0),
                             make_flow(1, 3, 100.0)};
  auto states = started_states(1);
  const Fabric fabric({10.0, 10.0, 10.0, 10.0}, {10.0, 10.0, 4.0, 10.0});
  alloc->allocate(flows, states, fabric, 0.0);
  // Ingress of node 2 (cap 4) shared: A=B=2. C then gets egress-1 leftover 8.
  EXPECT_DOUBLE_EQ(flows[0].rate, 2.0);
  EXPECT_DOUBLE_EQ(flows[1].rate, 2.0);
  EXPECT_DOUBLE_EQ(flows[2].rate, 8.0);
}

TEST(FairSharing, RespectsAllPortCapacities) {
  auto alloc = make_allocator("fair");
  std::vector<Flow> flows;
  for (std::uint32_t i = 0; i < 4; ++i) {
    for (std::uint32_t j = 0; j < 4; ++j) {
      if (i != j) flows.push_back(make_flow(i, j, 50.0));
    }
  }
  auto states = started_states(1);
  const Fabric fabric(4, 9.0);
  alloc->allocate(flows, states, fabric, 0.0);
  std::vector<double> egress(4, 0.0), ingress(4, 0.0);
  for (const Flow& f : flows) {
    EXPECT_GT(f.rate, 0.0);
    egress[f.src] += f.rate;
    ingress[f.dst] += f.rate;
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_LE(egress[i], 9.0 + 1e-9);
    EXPECT_LE(ingress[i], 9.0 + 1e-9);
  }
}

TEST(Madd, SingleCoflowFinishesTogetherAtGamma) {
  auto alloc = make_allocator("madd");
  // Egress 0 carries 12 total (bottleneck at cap 2 -> gamma 6).
  std::vector<Flow> flows = {make_flow(0, 1, 8.0), make_flow(0, 2, 4.0),
                             make_flow(1, 2, 2.0)};
  auto states = started_states(1);
  alloc->allocate(flows, states, Fabric(3, 2.0), 0.0);
  const double gamma = 6.0;
  for (const Flow& f : flows) {
    EXPECT_NEAR(f.remaining / f.rate, gamma, 1e-9)
        << "flow " << f.src << "->" << f.dst;
  }
}

TEST(Madd, FifoBackfillsSecondCoflow) {
  auto alloc = make_allocator("madd");
  // Coflow 0 (arrival 0) uses half of egress 0; coflow 1 backfills the rest.
  std::vector<Flow> flows = {make_flow(0, 1, 10.0, 0), make_flow(0, 2, 10.0, 1)};
  auto states = started_states(2);
  states[0].arrival = 0.0;
  states[1].arrival = 1.0;
  alloc->allocate(flows, states, Fabric(3, 4.0), 0.0);
  // Coflow 0 alone: gamma = 10/4 -> rate 4 (full egress). Coflow 1 starved.
  EXPECT_DOUBLE_EQ(flows[0].rate, 4.0);
  EXPECT_DOUBLE_EQ(flows[1].rate, 0.0);
}

TEST(Madd, BackfillUsesDisjointPorts) {
  auto alloc = make_allocator("madd");
  std::vector<Flow> flows = {make_flow(0, 1, 10.0, 0), make_flow(2, 3, 6.0, 1)};
  auto states = started_states(2);
  alloc->allocate(flows, states, Fabric(4, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(flows[0].rate, 2.0);
  EXPECT_DOUBLE_EQ(flows[1].rate, 2.0);  // disjoint ports: full rate backfill
}

TEST(Varys, SmallestBottleneckGoesFirst) {
  auto alloc = make_allocator("varys");
  // Both coflows contend on egress 0. Coflow 1 is smaller -> scheduled first
  // despite the higher id/arrival.
  std::vector<Flow> flows = {make_flow(0, 1, 100.0, 0), make_flow(0, 2, 10.0, 1)};
  auto states = started_states(2);
  states[1].arrival = 0.5;
  alloc->allocate(flows, states, Fabric(3, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(flows[1].rate, 5.0);  // winner takes the whole port
  EXPECT_DOUBLE_EQ(flows[0].rate, 0.0);
}

TEST(Varys, TiesFallBackToArrival) {
  auto alloc = make_allocator("varys");
  std::vector<Flow> flows = {make_flow(0, 1, 10.0, 0), make_flow(0, 2, 10.0, 1)};
  auto states = started_states(2);
  states[0].arrival = 0.0;
  states[1].arrival = 1.0;
  alloc->allocate(flows, states, Fabric(3, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(flows[0].rate, 5.0);
  EXPECT_DOUBLE_EQ(flows[1].rate, 0.0);
}

TEST(Aalo, FewerBytesSentMeansHigherPriority) {
  auto alloc = make_allocator("aalo");
  std::vector<Flow> flows = {make_flow(0, 1, 50e6, 0), make_flow(0, 2, 50e6, 1)};
  auto states = started_states(2);
  states[0].bytes_sent = 200e6;  // queue 2
  states[1].bytes_sent = 1e6;    // queue 0 -> priority
  alloc->allocate(flows, states, Fabric(3, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(flows[1].rate, 10.0);
  EXPECT_DOUBLE_EQ(flows[0].rate, 0.0);
}

TEST(Aalo, SameQueueSharesByArrival) {
  auto alloc = make_allocator("aalo");
  std::vector<Flow> flows = {make_flow(0, 1, 1e6, 0), make_flow(0, 2, 1e6, 1)};
  auto states = started_states(2);
  states[0].arrival = 1.0;
  states[1].arrival = 0.0;  // same queue (0 bytes sent), earlier arrival wins
  alloc->allocate(flows, states, Fabric(3, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(flows[1].rate, 10.0);
  EXPECT_DOUBLE_EQ(flows[0].rate, 0.0);
}

TEST(MaddSequential, ExhaustedPortStarvesLaterCoflowOnly) {
  auto alloc = make_allocator("madd");
  std::vector<Flow> flows = {make_flow(0, 1, 10.0, 0), make_flow(2, 1, 10.0, 1)};
  auto states = started_states(2);
  alloc->allocate(flows, states, Fabric(3, 3.0), 0.0);
  // Coflow 0 saturates ingress 1; coflow 1 gets nothing this epoch.
  EXPECT_DOUBLE_EQ(flows[0].rate, 3.0);
  EXPECT_DOUBLE_EQ(flows[1].rate, 0.0);
}

}  // namespace
}  // namespace ccf::net
