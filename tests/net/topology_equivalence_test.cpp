// Topology equivalence suite (DESIGN.md §12): the general topology layer
// must *degenerate exactly* to the networks it generalizes.
//
//  1. A leaf-spine whose spine layer is provisioned above the rack's worst
//     case (oversub <= 1/spines, so every uplink's capacity exceeds the
//     aggregate host rate behind it) is indistinguishable from the paper's
//     flat non-blocking Fabric: the spine links can never be the fill
//     bottleneck (mediant inequality: cap_up >= rem_e0 + rem_e1 while
//     load_up <= load_e0 + load_e1), so every allocator produces the same
//     schedule bit for bit — identical event counts, completions and byte
//     totals, under every routing policy.
//  2. A fat-tree with its route-sets collapsed to one path per pair is the
//     same network as a single-spine leaf-spine with rack r = global edge r:
//     the binding edge<->agg links map one-to-one (same capacities, same
//     flow sets, same relative id order) and the agg<->core layer is slack.
//
// Both hold at the Simulator level for every registered allocator and at the
// Engine level for every placement scheduler x allocator pair (the session
// plumbing — per-epoch demand aggregation, set_network, routed simulation —
// must not perturb the schedule either).
#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <tuple>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "core/registry.hpp"
#include "data/workload.hpp"
#include "net/multipath.hpp"
#include "net/simulator.hpp"
#include "net/topology.hpp"
#include "testing/invariants.hpp"
#include "util/rng.hpp"

namespace ccf::net {
namespace {

FlowMatrix random_matrix(std::size_t n, util::Pcg32& rng, double density,
                         double max_volume) {
  FlowMatrix m(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && rng.uniform01() < density) {
        m.set(i, j, rng.uniform(1.0, max_volume));
      }
    }
  }
  return m;
}

/// Same shape as engine_equivalence_test's workload: staggered arrivals,
/// per-flow start offsets, admit/reject deadlines, an empty coflow.
std::vector<CoflowSpec> make_workload(std::size_t nodes, std::uint64_t seed) {
  util::Pcg32 rng(util::derive_seed(seed, 7), 7);
  std::vector<CoflowSpec> specs;
  for (std::size_t c = 0; c < 6; ++c) {
    CoflowSpec spec("c" + std::to_string(c), rng.uniform(0.0, 3.0),
                    random_matrix(nodes, rng, 0.4, 200.0));
    if (c % 3 == 1) {
      FlowMatrix offsets(nodes);
      for (std::size_t i = 0; i < nodes; ++i) {
        for (std::size_t j = 0; j < nodes; ++j) {
          if (spec.flows.volume(i, j) > 0.0) {
            offsets.set(i, j, rng.uniform(0.0, 0.5));
          }
        }
      }
      spec.start_offsets = std::move(offsets);
    }
    if (c % 4 == 2) spec.deadline = rng.uniform(1e-6, 2e-5);
    if (c % 4 == 0) spec.deadline = 1e3;
    specs.push_back(std::move(spec));
  }
  specs.push_back(CoflowSpec("empty", 1.0, FlowMatrix(nodes)));
  return specs;
}

/// Aggregate demand of a whole workload — what the demand-aware routing
/// policies (greedy, joint) key their choices on.
FlowMatrix aggregate_demand(const std::vector<CoflowSpec>& specs,
                            std::size_t nodes) {
  FlowMatrix demand(nodes);
  for (const auto& spec : specs) {
    for (std::size_t i = 0; i < nodes; ++i) {
      for (std::size_t j = 0; j < nodes; ++j) {
        if (i != j) demand.add(i, j, spec.flows.volume(i, j));
      }
    }
  }
  return demand;
}

SimReport run_sim(const std::vector<CoflowSpec>& specs,
                  std::shared_ptr<const Network> network,
                  const std::string& allocator) {
  Simulator sim(std::move(network), testing::make_invariant_checked(allocator));
  for (const auto& spec : specs) sim.add_coflow(spec);
  return sim.run();
}

/// Bit-identical schedules: exact equality, not a tolerance — the point of
/// the suite is that the degenerate topologies are the *same* computation.
void expect_identical(const SimReport& a, const SimReport& b) {
  ASSERT_EQ(a.events, b.events);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  ASSERT_EQ(a.coflows.size(), b.coflows.size());
  for (std::size_t c = 0; c < a.coflows.size(); ++c) {
    EXPECT_EQ(a.coflows[c].rejected, b.coflows[c].rejected) << a.coflows[c].name;
    EXPECT_EQ(a.coflows[c].completion, b.coflows[c].completion)
        << a.coflows[c].name;
    EXPECT_EQ(a.coflows[c].bytes, b.coflows[c].bytes) << a.coflows[c].name;
  }
}

using Combo = std::tuple<std::uint64_t, std::string>;

class TopologyEquivalence : public ::testing::TestWithParam<Combo> {};

TEST_P(TopologyEquivalence, NonOversubscribedLeafSpineMatchesFlatFabric) {
  const auto& [seed, allocator] = GetParam();
  const auto specs = make_workload(6, seed);
  const auto flat = run_sim(
      specs, std::make_shared<const Fabric>(6, 10.0), allocator);

  // oversub = 0.25 with 2 spines: each uplink carries 2 * 10 / (0.25 * 2)
  // = 40 B/s against at most 20 B/s of host demand behind it.
  const auto topo = Topology::leaf_spine(3, 2, 2, 10.0, 0.25);
  const FlowMatrix demand = aggregate_demand(specs, 6);
  const std::vector<std::pair<std::string, RouteChoice>> routings = {
      {"ecmp", route_ecmp(*topo)},
      {"greedy", route_greedy(*topo, demand)},
      {"joint", route_joint(*topo, demand)},
  };
  for (const auto& [name, choice] : routings) {
    const auto routed =
        std::make_shared<const RoutedTopology>(topo, choice);
    const auto report = run_sim(specs, routed, allocator);
    SCOPED_TRACE("routing=" + name);
    expect_identical(flat, report);
  }
}

TEST_P(TopologyEquivalence, CollapsedFatTreeMatchesSinglePathLeafSpine) {
  const auto& [seed, allocator] = GetParam();
  const auto specs = make_workload(16, seed);

  // k = 4 fat-tree, agg<->core layer scaled to 100x the host rate (slack by
  // construction), all routes collapsed to path 0 — against the single-spine
  // leaf-spine with rack r standing in for global edge r (uplink capacity
  // 2 * 10 / (2 * 1) = 10 = the edge->agg link it maps onto).
  const auto fat = Topology::fat_tree(4, 10.0, 0.01);
  const auto spine = Topology::leaf_spine(8, 2, 1, 10.0, 2.0);
  const auto fat_report = run_sim(
      specs,
      std::make_shared<const RoutedTopology>(fat, route_collapsed(*fat)),
      allocator);
  const auto spine_report = run_sim(
      specs,
      std::make_shared<const RoutedTopology>(spine, route_collapsed(*spine)),
      allocator);
  expect_identical(fat_report, spine_report);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TopologyEquivalence,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u),
                       ::testing::Values("fair", "madd", "varys", "aalo",
                                         "varys-edf")),
    [](const ::testing::TestParamInfo<Combo>& param_info) {
      std::string alloc = std::get<1>(param_info.param);
      for (char& ch : alloc) {
        if (ch == '-') ch = '_';  // gtest names must be identifiers
      }
      return "seed" + std::to_string(std::get<0>(param_info.param)) + "_" + alloc;
    });

}  // namespace
}  // namespace ccf::net

namespace ccf::core {
namespace {

data::Workload tiny_workload(std::uint64_t seed) {
  data::WorkloadSpec spec;
  spec.nodes = 4;
  spec.partitions = 8;
  spec.customer_bytes = 4e6;
  spec.orders_bytes = 4e7;
  spec.zipf_theta = 0.8;
  spec.skew = 0.3;
  spec.seed = seed;
  return data::generate_workload(spec);
}

std::vector<std::string> names(std::span<const std::string_view> views) {
  return {views.begin(), views.end()};
}

using EngineCombo = std::tuple<std::string, std::string>;

class EngineTopologyEquivalence
    : public ::testing::TestWithParam<EngineCombo> {};

// The Engine's routed-session plumbing (epoch demand aggregation,
// Simulator::set_network, per-drain re-routing) on a non-oversubscribed
// leaf-spine must reproduce the flat-fabric session exactly, for every
// placement scheduler x allocator pair the registry knows.
TEST_P(EngineTopologyEquivalence, RoutedSessionMatchesFlatSession) {
  const auto& [scheduler, allocator] = GetParam();

  EngineOptions flat_opts;
  flat_opts.nodes = 4;
  flat_opts.allocator = allocator;
  Engine flat(flat_opts);

  EngineOptions topo_opts;
  topo_opts.nodes = 0;  // derived from the topology
  topo_opts.allocator = allocator;
  topo_opts.topology = "leafspine:racks=2,hosts=2,spines=2,oversub=0.25";
  Engine routed(std::move(topo_opts));
  ASSERT_NE(routed.topology(), nullptr);
  ASSERT_EQ(routed.fabric().nodes(), 4u);

  for (const std::uint64_t seed : {21u, 22u}) {
    const auto w = std::make_shared<const data::Workload>(tiny_workload(seed));
    flat.submit(QuerySpec("q", w, scheduler));
    routed.submit(QuerySpec("q", w, scheduler));
    const EngineReport a = flat.drain();
    const EngineReport b = routed.drain();
    ASSERT_EQ(a.queries.size(), b.queries.size());
    ASSERT_EQ(a.sim.events, b.sim.events);
    EXPECT_EQ(a.sim.makespan, b.sim.makespan);
    EXPECT_EQ(a.sim.total_bytes, b.sim.total_bytes);
    ASSERT_EQ(a.sim.coflows.size(), b.sim.coflows.size());
    for (std::size_t c = 0; c < a.sim.coflows.size(); ++c) {
      EXPECT_EQ(a.sim.coflows[c].completion, b.sim.coflows[c].completion);
      EXPECT_EQ(a.sim.coflows[c].bytes, b.sim.coflows[c].bytes);
    }
    EXPECT_EQ(a.queries.front().cct_seconds, b.queries.front().cct_seconds);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineTopologyEquivalence,
    ::testing::Combine(::testing::ValuesIn(names(registry::scheduler_names())),
                       ::testing::ValuesIn(names(registry::allocator_names()))),
    [](const ::testing::TestParamInfo<EngineCombo>& param_info) {
      std::string label =
          std::get<0>(param_info.param) + "_" + std::get<1>(param_info.param);
      for (char& ch : label) {
        if (ch == '-') ch = '_';  // gtest names must be identifiers
      }
      return label;
    });

}  // namespace
}  // namespace ccf::core
