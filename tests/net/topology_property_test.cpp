// Cross-topology property sweep: on every Network implementation — flat
// fabric, rack fabric, routed leaf-spine — the same engine invariants hold:
//   (i)   single-coflow MADD CCT equals the analytic Γ of that topology;
//   (ii)  no allocator beats Γ;
//   (iii) bytes are conserved;
//   (iv)  Γ is monotone in topology restriction: flat <= rack <= routed
//         (each extra constraint layer can only slow the coflow).
#include <gtest/gtest.h>

#include <memory>

#include "net/metrics.hpp"
#include "net/multipath.hpp"
#include "net/rack.hpp"
#include "net/simulator.hpp"
#include "util/rng.hpp"

namespace ccf::net {
namespace {

constexpr std::size_t kRacks = 3;
constexpr std::size_t kHosts = 3;
constexpr std::size_t kNodes = kRacks * kHosts;
constexpr double kRate = 10.0;

FlowMatrix random_flows(std::uint64_t seed) {
  util::Pcg32 rng(util::derive_seed(seed, 121), 121);
  FlowMatrix m(kNodes);
  for (std::size_t i = 0; i < kNodes; ++i) {
    for (std::size_t j = 0; j < kNodes; ++j) {
      if (i != j && rng.uniform01() < 0.5) {
        m.set(i, j, rng.uniform(1.0, 150.0));
      }
    }
  }
  if (m.traffic() <= 0.0) m.set(0, 1, 10.0);
  return m;
}

std::vector<std::shared_ptr<const Network>> topologies(const FlowMatrix& m) {
  std::vector<std::shared_ptr<const Network>> nets;
  nets.push_back(std::make_shared<const Fabric>(kNodes, kRate));
  nets.push_back(
      std::make_shared<const RackFabric>(kRacks, kHosts, kRate, 2.0));
  const auto mp = std::make_shared<const MultiPathFabric>(
      kRacks, kHosts, 2, kRate, kHosts * kRate / 4.0);
  nets.push_back(
      std::make_shared<const RoutedNetwork>(mp, route_least_loaded(*mp, m)));
  return nets;
}

class TopologyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TopologyProperty, MaddMatchesGammaOnEveryTopology) {
  const FlowMatrix m = random_flows(GetParam());
  for (const auto& net : topologies(m)) {
    const double gamma = gamma_bound(m, *net);
    Simulator sim(net, make_allocator("madd"));
    sim.add_coflow(CoflowSpec("c", 0.0, m));
    const SimReport r = sim.run();
    EXPECT_NEAR(r.coflows[0].cct(), gamma, 1e-6 * gamma + 1e-9);
  }
}

TEST_P(TopologyProperty, NoAllocatorBeatsGammaOnEveryTopology) {
  const FlowMatrix m = random_flows(GetParam() + 50);
  for (const auto& net : topologies(m)) {
    const double gamma = gamma_bound(m, *net);
    for (const char* name : {"fair", "varys", "aalo"}) {
      Simulator sim(net, make_allocator(name));
      sim.add_coflow(CoflowSpec("c", 0.0, m));
      EXPECT_GE(sim.run().coflows[0].cct(), gamma * (1.0 - 1e-9)) << name;
    }
  }
}

TEST_P(TopologyProperty, BytesConservedOnEveryTopology) {
  const FlowMatrix m = random_flows(GetParam() + 100);
  const double traffic = m.traffic();
  for (const auto& net : topologies(m)) {
    Simulator sim(net, make_allocator("fair"));
    sim.add_coflow(CoflowSpec("c", 0.0, m));
    EXPECT_NEAR(sim.run().total_bytes, traffic, 1e-6 * traffic + 1e-9);
  }
}

TEST_P(TopologyProperty, ConstraintLayersOnlySlowTheCoflow) {
  const FlowMatrix m = random_flows(GetParam() + 150);
  const Fabric flat(kNodes, kRate);
  const RackFabric rack(kRacks, kHosts, kRate, 2.0);
  const auto mp = std::make_shared<const MultiPathFabric>(
      kRacks, kHosts, 2, kRate, kHosts * kRate / 4.0);
  const RoutedNetwork routed(mp, route_least_loaded(*mp, m));
  const double g_flat = gamma_bound(m, flat);
  const double g_rack = gamma_bound(m, rack);
  const double g_routed = gamma_bound(m, routed);
  // Rack adds uplink constraints on top of the host ports; the routed
  // leaf-spine splits the same aggregate uplink over fixed per-flow paths.
  EXPECT_LE(g_flat, g_rack + 1e-9);
  EXPECT_LE(g_rack, g_routed + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopologyProperty,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace ccf::net
