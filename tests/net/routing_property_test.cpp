// Route-set and joint-optimizer properties over the general topology layer
// (DESIGN.md §12). For every topology family:
//   (i)   every path of every route-set is a walk from src to dst in the
//         link graph (link_ends chain up) and is loop-free (no graph node
//         repeats), starting at src's egress port and ending at dst's
//         ingress port;
//   (ii)  total allocated rate never exceeds any link's (possibly
//         fault-degraded) capacity, under every routing policy and across
//         mid-session re-routes (Simulator::set_network) — enforced by the
//         invariant-checking allocator decorator from ISSUE 4;
//   (iii) the joint routing x bandwidth optimizer is never worse than static
//         ECMP, both on the analytic objective (routed Γ) and on the
//         simulated MADD CCT.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "net/multipath.hpp"
#include "net/simulator.hpp"
#include "net/topology.hpp"
#include "testing/invariants.hpp"
#include "util/rng.hpp"

namespace ccf::net {
namespace {

FlowMatrix random_flows(std::size_t n, std::uint64_t seed, double density) {
  util::Pcg32 rng(util::derive_seed(seed, 77), 77);
  FlowMatrix m(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && rng.uniform01() < density) {
        m.set(i, j, rng.uniform(1.0, 300.0));
      }
    }
  }
  if (m.traffic() <= 0.0) m.set(0, 1, 10.0);
  return m;
}

std::vector<std::shared_ptr<const Topology>> families(std::uint64_t seed) {
  WaxmanOptions wax;
  wax.routers = 5;
  wax.route_k = 3;
  return {
      Topology::leaf_spine(4, 3, 3, 10.0, 2.0),
      Topology::fat_tree(4, 10.0, 2.0),
      Topology::waxman(12, 10.0, seed, wax),
  };
}

class RoutingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoutingProperty, EveryPathIsALoopFreeSrcToDstWalk) {
  for (const auto& topo : families(GetParam())) {
    const auto n = static_cast<std::uint32_t>(topo->nodes());
    std::vector<Topology::LinkId> links;
    for (std::uint32_t src = 0; src < n; ++src) {
      for (std::uint32_t dst = 0; dst < n; ++dst) {
        if (src == dst) continue;
        const std::size_t paths = topo->path_count(src, dst);
        ASSERT_GE(paths, 1u);
        for (std::uint32_t k = 0; k < paths; ++k) {
          links.clear();
          topo->append_path_links(src, dst, k, links);
          ASSERT_GE(links.size(), 2u);
          // Canonical port ids frame the path.
          EXPECT_EQ(links.front(), static_cast<Topology::LinkId>(src));
          EXPECT_EQ(links.back(), static_cast<Topology::LinkId>(n + dst));
          // The link chain is a walk: head of each link = tail of the next.
          std::set<std::uint32_t> visited;
          EXPECT_EQ(topo->link_ends(links.front()).tail, src);
          EXPECT_EQ(topo->link_ends(links.back()).head, dst);
          for (std::size_t l = 0; l + 1 < links.size(); ++l) {
            EXPECT_EQ(topo->link_ends(links[l]).head,
                      topo->link_ends(links[l + 1]).tail);
          }
          // Loop-free: no graph node is entered twice.
          visited.insert(src);
          for (const auto link : links) {
            EXPECT_TRUE(visited.insert(topo->link_ends(link).head).second)
                << "node revisited on path " << k << " of (" << src << ","
                << dst << ")";
          }
        }
      }
    }
  }
}

TEST_P(RoutingProperty, CapacityHoldsUnderFaultsAndReroutes) {
  // Oversubscribed leaf-spine (uplinks are genuine bottlenecks), random
  // faults, and a mid-session re-route through set_network: the decorator
  // fails the test if any allocation ever exceeds a current link capacity.
  const std::uint64_t seed = GetParam();
  const auto topo = Topology::leaf_spine(4, 3, 2, 10.0, 4.0);
  const FlowMatrix m = random_flows(topo->nodes(), seed, 0.5);

  for (const char* allocator : {"fair", "madd", "varys"}) {
    auto checked = std::make_unique<testing::InvariantCheckedAllocator>(
        make_allocator(allocator));
    auto* checker = checked.get();
    Simulator sim(
        std::make_shared<const RoutedTopology>(topo, route_ecmp(*topo)),
        std::move(checked));
    util::Pcg32 rng(util::derive_seed(seed, 11), 11);
    RandomFaultOptions fopts;
    fopts.horizon = 8.0;
    fopts.outage = 3.0;
    sim.set_faults(FaultSchedule::random(sim.network(), fopts, rng));
    sim.add_coflow(CoflowSpec("a", 0.0, m));
    const SimReport first = sim.run();
    EXPECT_GT(first.events, 0u);

    // Re-route the next epoch onto the joint choice; the fault schedule is
    // revalidated against the replacement network.
    sim.reset_epoch();
    checker->reset_epoch();
    sim.set_network(
        std::make_shared<const RoutedTopology>(topo, route_joint(*topo, m)));
    sim.add_coflow(CoflowSpec("b", 0.0, m));
    const SimReport second = sim.run();
    EXPECT_GT(second.events, 0u);
    EXPECT_GT(checker->epochs(), 0u);
  }
}

TEST_P(RoutingProperty, JointNeverWorseThanEcmpOnGamma) {
  const std::uint64_t seed = GetParam();
  for (const auto& topo : families(seed)) {
    const FlowMatrix m = random_flows(topo->nodes(), seed, 0.5);
    const double ecmp = routed_gamma(*topo, m, route_ecmp(*topo));
    const double joint = routed_gamma(*topo, m, route_joint(*topo, m));
    EXPECT_LE(joint, ecmp * (1.0 + 1e-12)) << "kind "
                                           << static_cast<int>(topo->kind());
  }
}

TEST_P(RoutingProperty, JointNeverWorseThanEcmpOnSimulatedCct) {
  // Single coflow under MADD: the simulated CCT equals the routed Γ, so the
  // optimizer's analytic guarantee must carry through the simulator.
  const std::uint64_t seed = GetParam();
  const auto topo = Topology::leaf_spine(4, 4, 2, 10.0, 4.0);
  const FlowMatrix m = random_flows(topo->nodes(), seed + 500, 0.6);

  const auto run = [&](RouteChoice choice) {
    Simulator sim(
        std::make_shared<const RoutedTopology>(topo, std::move(choice)),
        make_allocator("madd"));
    sim.add_coflow(CoflowSpec("c", 0.0, m));
    return sim.run().coflows[0].cct();
  };
  const double ecmp = run(route_ecmp(*topo));
  const double joint = run(route_joint(*topo, m));
  EXPECT_LE(joint, ecmp * (1.0 + 1e-9));
}

TEST(RoutingPolicy, RegistryShapesAndValidation) {
  const auto topo = Topology::leaf_spine(2, 2, 2, 10.0, 1.0);
  const FlowMatrix m = random_flows(topo->nodes(), 3, 0.8);
  for (const char* name : {"ecmp", "greedy", "joint"}) {
    const auto policy = make_routing_policy(name);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->name(), name);
    const RouteChoice choice = policy->choose(*topo, m);
    // Every policy's choice binds cleanly (ctor validates path indices).
    RoutedTopology routed(topo, choice);
    EXPECT_EQ(routed.nodes(), topo->nodes());
  }
  EXPECT_THROW(make_routing_policy("bogus"), std::invalid_argument);
  EXPECT_THROW(route_joint(*topo, FlowMatrix(3)), std::invalid_argument);
}

TEST(SetNetwork, RejectsMismatchedOrLateSwaps) {
  const auto topo = Topology::leaf_spine(2, 2, 2, 10.0, 1.0);
  Simulator sim(std::make_shared<const Fabric>(4, 10.0),
                make_allocator("madd"));
  EXPECT_THROW(sim.set_network(nullptr), std::invalid_argument);
  EXPECT_THROW(sim.set_network(std::make_shared<const Fabric>(5, 10.0)),
               std::invalid_argument);

  FlowMatrix m(4);
  m.set(0, 1, 100.0);
  sim.add_coflow(CoflowSpec("c", 0.0, m));
  sim.run();
  // After run(): only reset_epoch reopens the swap window.
  EXPECT_THROW(sim.set_network(std::make_shared<const RoutedTopology>(
                   topo, route_ecmp(*topo))),
               std::logic_error);
  sim.reset_epoch();
  sim.set_network(
      std::make_shared<const RoutedTopology>(topo, route_ecmp(*topo)));
  sim.add_coflow(CoflowSpec("c", 0.0, m));
  EXPECT_EQ(sim.run().coflows.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace ccf::net
