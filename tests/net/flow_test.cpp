#include "net/flow.hpp"

#include <gtest/gtest.h>

namespace ccf::net {
namespace {

FlowMatrix sample() {
  FlowMatrix m(3);
  m.set(0, 1, 10.0);
  m.set(0, 2, 5.0);
  m.set(1, 2, 7.0);
  m.set(2, 2, 99.0);  // diagonal: local, free
  return m;
}

TEST(FlowMatrix, RejectsZeroNodes) {
  EXPECT_THROW(FlowMatrix(0), std::invalid_argument);
}

TEST(FlowMatrix, TrafficIgnoresDiagonal) {
  EXPECT_DOUBLE_EQ(sample().traffic(), 22.0);
}

TEST(FlowMatrix, EgressAndIngressPerNode) {
  const auto m = sample();
  EXPECT_DOUBLE_EQ(m.egress(0), 15.0);
  EXPECT_DOUBLE_EQ(m.egress(1), 7.0);
  EXPECT_DOUBLE_EQ(m.egress(2), 0.0);
  EXPECT_DOUBLE_EQ(m.ingress(0), 0.0);
  EXPECT_DOUBLE_EQ(m.ingress(1), 10.0);
  EXPECT_DOUBLE_EQ(m.ingress(2), 12.0);
}

TEST(FlowMatrix, AddAccumulates) {
  auto m = sample();
  m.add(0, 1, 2.5);
  EXPECT_DOUBLE_EQ(m.volume(0, 1), 12.5);
}

TEST(FlowMatrix, FlowCountSkipsDiagonalAndTiny) {
  auto m = sample();
  m.set(1, 0, 1e-9);  // below threshold
  EXPECT_EQ(m.flow_count(), 3u);
  EXPECT_EQ(m.flow_count(0.0), 4u);
}

TEST(FlowMatrix, ToFlowsMaterializesOffDiagonal) {
  const auto flows = sample().to_flows();
  ASSERT_EQ(flows.size(), 3u);
  double total = 0.0;
  for (const Flow& f : flows) {
    EXPECT_NE(f.src, f.dst);
    EXPECT_DOUBLE_EQ(f.volume, f.remaining);
    EXPECT_DOUBLE_EQ(f.rate, 0.0);
    total += f.volume;
  }
  EXPECT_DOUBLE_EQ(total, 22.0);
}

TEST(FlowMatrix, EqualityIsElementwise) {
  EXPECT_EQ(sample(), sample());
  auto m = sample();
  m.add(2, 0, 1.0);
  EXPECT_NE(m, sample());
}

}  // namespace
}  // namespace ccf::net
