#include "net/multipath.hpp"

#include <gtest/gtest.h>

#include "net/metrics.hpp"
#include "net/rack.hpp"
#include "net/simulator.hpp"
#include "util/rng.hpp"

namespace ccf::net {
namespace {

std::shared_ptr<const MultiPathFabric> small_fabric(std::size_t spines = 2) {
  // 3 racks x 2 hosts, host rate 10, spine links 10 each.
  return std::make_shared<const MultiPathFabric>(3, 2, spines, 10.0, 10.0);
}

TEST(MultiPathFabric, Geometry) {
  const auto f = small_fabric();
  EXPECT_EQ(f->nodes(), 6u);
  EXPECT_EQ(f->racks(), 3u);
  EXPECT_EQ(f->spines(), 2u);
  EXPECT_EQ(f->link_count(), 2 * 6 + 2 * 3 * 2);
  EXPECT_EQ(f->rack_of(0), 0u);
  EXPECT_EQ(f->rack_of(5), 2u);
  EXPECT_EQ(f->path_count(0, 1), 1u);  // same rack
  EXPECT_EQ(f->path_count(0, 2), 2u);  // cross rack: one path per spine
}

TEST(MultiPathFabric, RejectsInvalidArguments) {
  EXPECT_THROW(MultiPathFabric(0, 2, 2, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(MultiPathFabric(2, 0, 2, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(MultiPathFabric(2, 2, 0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(MultiPathFabric(2, 2, 2, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(MultiPathFabric(2, 2, 2, 1.0, -1.0), std::invalid_argument);
}

TEST(RoutedNetwork, PathsFollowTheRouting) {
  const auto f = small_fabric();
  Routing routing(6);
  routing.set_spine(0, 2, 1);
  const RoutedNetwork net(f, routing);
  const auto cross = net.links_of(0, 2);
  ASSERT_EQ(cross.size(), 4u);
  EXPECT_EQ(cross[0], f->egress_link(0));
  EXPECT_EQ(cross[1], f->uplink(0, 1));
  EXPECT_EQ(cross[2], f->downlink(1, 1));
  EXPECT_EQ(cross[3], f->ingress_link(2));
  const auto local = net.links_of(0, 1);
  ASSERT_EQ(local.size(), 2u);
}

TEST(RoutedNetwork, Errors) {
  const auto f = small_fabric();
  EXPECT_THROW(RoutedNetwork(nullptr, Routing(6)), std::invalid_argument);
  EXPECT_THROW(RoutedNetwork(f, Routing(4)), std::invalid_argument);
  Routing bad(6);
  bad.set_spine(0, 2, 9);  // spine out of range
  const RoutedNetwork net(f, bad);
  std::vector<Network::LinkId> out;
  EXPECT_THROW(net.append_links(0, 2, out), std::out_of_range);
}

TEST(RouteEcmp, DeterministicHashOverSpines) {
  const auto f = small_fabric(3);
  const FlowMatrix flows(6);
  const Routing r = route_ecmp(*f, flows);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_EQ(r.spine(i, j), (i + j) % 3);
    }
  }
}

TEST(RouteLeastLoaded, SpreadsTwoHeavyFlowsAcrossSpines) {
  const auto f = small_fabric(2);
  FlowMatrix flows(6);
  // Two heavy flows from rack 0 to rack 1: with one spine they would share
  // an uplink; least-loaded puts them on different spines.
  flows.set(0, 2, 100.0);
  flows.set(1, 3, 100.0);
  const Routing r = route_least_loaded(*f, flows);
  EXPECT_NE(r.spine(0, 2), r.spine(1, 3));
}

TEST(RouteLeastLoaded, GammaNeverWorseThanEcmp) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto f = std::make_shared<const MultiPathFabric>(4, 3, 3, 10.0, 15.0);
    util::Pcg32 rng(util::derive_seed(seed, 91), 91);
    FlowMatrix flows(12);
    for (std::size_t i = 0; i < 12; ++i) {
      for (std::size_t j = 0; j < 12; ++j) {
        if (i != j && rng.uniform01() < 0.4) {
          flows.set(i, j, rng.uniform(1.0, 200.0));
        }
      }
    }
    const double g_ecmp =
        gamma_bound(flows, RoutedNetwork(f, route_ecmp(*f, flows)));
    const double g_ll =
        gamma_bound(flows, RoutedNetwork(f, route_least_loaded(*f, flows)));
    EXPECT_LE(g_ll, g_ecmp * 1.001 + 1e-9) << "seed " << seed;
  }
}

TEST(RoutedNetwork, SingleSpineMatchesRackFabric) {
  // One spine with uplink capacity = hosts*host_rate/oversub is exactly the
  // RackFabric model: gammas must agree for any flows.
  const auto mp = std::make_shared<const MultiPathFabric>(3, 2, 1, 10.0, 5.0);
  const RackFabric rack(3, 2, 10.0, /*oversubscription=*/4.0);  // uplink 5
  util::Pcg32 rng(7, 7);
  FlowMatrix flows(6);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      if (i != j) flows.set(i, j, rng.uniform(0.0, 50.0));
    }
  }
  const RoutedNetwork routed(mp, route_ecmp(*mp, flows));
  EXPECT_NEAR(gamma_bound(flows, routed), gamma_bound(flows, rack), 1e-9);
}

TEST(RoutedNetwork, SimulatedMaddMatchesGamma) {
  const auto f = std::make_shared<const MultiPathFabric>(3, 2, 2, 10.0, 8.0);
  FlowMatrix flows(6);
  flows.set(0, 2, 60.0);
  flows.set(1, 4, 40.0);
  flows.set(3, 5, 30.0);
  flows.set(2, 0, 20.0);
  const auto routed = std::make_shared<const RoutedNetwork>(
      f, route_least_loaded(*f, flows));
  const double gamma = gamma_bound(flows, *routed);
  Simulator sim(routed, make_allocator("madd"));
  sim.add_coflow(CoflowSpec("c", 0.0, std::move(flows)));
  EXPECT_NEAR(sim.run().coflows[0].cct(), gamma, 1e-9 * gamma);
}

}  // namespace
}  // namespace ccf::net
