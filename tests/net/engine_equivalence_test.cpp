// Reference-vs-incremental engine equivalence (DESIGN.md §3): both engine
// modes must produce the same schedule — identical event counts, per-coflow
// completions (1e-9 relative), byte totals, and admission decisions — across
// allocators, topologies, online arrivals, per-flow start offsets, deadline
// rejections, and zero-flow coflows. The reference engine recomputes
// everything per event through the legacy AoS allocator entry point; the
// incremental engine keeps allocator state across events, so any staleness
// bug in its caches shows up here as a divergence.
// Every run goes through the invariant-checking decorator
// (tests/testing/invariants.hpp), so capacity, conservation and min_dt-hint
// violations fail here even when both engines agree with each other.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "net/rack.hpp"
#include "net/simulator.hpp"
#include "testing/invariants.hpp"
#include "util/rng.hpp"

namespace ccf::net {
namespace {

FlowMatrix random_matrix(std::size_t n, util::Pcg32& rng, double density,
                         double max_volume) {
  FlowMatrix m(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && rng.uniform01() < density) {
        m.set(i, j, rng.uniform(1.0, max_volume));
      }
    }
  }
  return m;
}

/// Workload exercising every engine edge: staggered arrivals, per-flow start
/// offsets, tight deadlines (rejections under varys-edf), and an empty
/// coflow.
std::vector<CoflowSpec> make_workload(std::size_t nodes, std::uint64_t seed) {
  util::Pcg32 rng(util::derive_seed(seed, 7), 7);
  std::vector<CoflowSpec> specs;
  for (std::size_t c = 0; c < 8; ++c) {
    CoflowSpec spec("c" + std::to_string(c), rng.uniform(0.0, 3.0),
                    random_matrix(nodes, rng, 0.4, 200.0));
    if (c % 3 == 1) {
      FlowMatrix offsets(nodes);
      for (std::size_t i = 0; i < nodes; ++i) {
        for (std::size_t j = 0; j < nodes; ++j) {
          if (spec.flows.volume(i, j) > 0.0) {
            offsets.set(i, j, rng.uniform(0.0, 0.5));
          }
        }
      }
      spec.start_offsets = std::move(offsets);
    }
    // A mix of generous and hopeless deadlines so varys-edf both admits and
    // rejects; inert under the other allocators.
    if (c % 4 == 2) spec.deadline = rng.uniform(1e-6, 2e-5);
    if (c % 4 == 0) spec.deadline = 1e3;
    specs.push_back(std::move(spec));
  }
  specs.push_back(CoflowSpec("empty", 1.0, FlowMatrix(nodes)));
  return specs;
}

SimReport run_engine(const std::vector<CoflowSpec>& specs, bool rack,
                     const std::string& allocator, SimEngine engine,
                     std::size_t parallel_threshold, std::uint64_t fault_seed) {
  SimConfig config;
  config.engine = engine;
  config.parallel_advance_threshold = parallel_threshold;
  auto network = rack
                     ? std::shared_ptr<const Network>(new RackFabric(3, 2, 10.0))
                     : std::shared_ptr<const Network>(new Fabric(6, 10.0));
  Simulator sim(std::move(network), testing::make_invariant_checked(allocator),
                config);
  if (fault_seed != 0) {
    // Seed-derived random faults sized to land mid-run (volumes <= 200 B at
    // 10 B/s ports put completions in the tens of seconds).
    util::Pcg32 rng(util::derive_seed(fault_seed, 11), 11);
    RandomFaultOptions opts;
    opts.horizon = 8.0;
    opts.outage = 3.0;
    sim.set_faults(FaultSchedule::random(sim.network(), opts, rng));
  }
  for (const auto& spec : specs) sim.add_coflow(spec);
  return sim.run();
}

void expect_equivalent(const SimReport& ref, const SimReport& inc) {
  ASSERT_EQ(ref.events, inc.events);
  EXPECT_NEAR(ref.makespan, inc.makespan, 1e-9 * (1.0 + ref.makespan));
  EXPECT_NEAR(ref.total_bytes, inc.total_bytes,
              1e-9 * (1.0 + ref.total_bytes));
  ASSERT_EQ(ref.coflows.size(), inc.coflows.size());
  for (std::size_t c = 0; c < ref.coflows.size(); ++c) {
    EXPECT_EQ(ref.coflows[c].rejected, inc.coflows[c].rejected)
        << ref.coflows[c].name;
    EXPECT_NEAR(ref.coflows[c].completion, inc.coflows[c].completion,
                1e-9 * (1.0 + ref.coflows[c].completion))
        << ref.coflows[c].name;
    EXPECT_NEAR(ref.coflows[c].bytes, inc.coflows[c].bytes,
                1e-9 * (1.0 + ref.coflows[c].bytes))
        << ref.coflows[c].name;
  }
}

using Combo = std::tuple<std::uint64_t, std::string, bool>;

class EngineEquivalence : public ::testing::TestWithParam<Combo> {};

TEST_P(EngineEquivalence, ReferenceAndIncrementalAgree) {
  const auto& [seed, allocator, rack] = GetParam();
  const auto specs = make_workload(6, seed);
  const auto ref = run_engine(specs, rack, allocator, SimEngine::kReference,
                              SimConfig{}.parallel_advance_threshold, 0);
  const auto inc = run_engine(specs, rack, allocator, SimEngine::kIncremental,
                              SimConfig{}.parallel_advance_threshold, 0);
  expect_equivalent(ref, inc);
}

TEST_P(EngineEquivalence, AgreeWithParallelAdvancePath) {
  // Threshold low enough that every epoch takes the chunked parallel
  // advance/compaction path in both engines.
  const auto& [seed, allocator, rack] = GetParam();
  const auto specs = make_workload(6, seed);
  const auto ref =
      run_engine(specs, rack, allocator, SimEngine::kReference, 8, 0);
  const auto inc =
      run_engine(specs, rack, allocator, SimEngine::kIncremental, 8, 0);
  expect_equivalent(ref, inc);
}

TEST_P(EngineEquivalence, AgreeUnderRandomFaults) {
  // Same workload under a seed-derived fault schedule (link degradations,
  // hard one-sided port cuts, a straggler — all restored): the incremental
  // engine's cached allocator state must survive mid-run capacity changes.
  const auto& [seed, allocator, rack] = GetParam();
  const auto specs = make_workload(6, seed);
  const auto ref = run_engine(specs, rack, allocator, SimEngine::kReference,
                              SimConfig{}.parallel_advance_threshold, seed);
  const auto inc = run_engine(specs, rack, allocator, SimEngine::kIncremental,
                              SimConfig{}.parallel_advance_threshold, seed);
  expect_equivalent(ref, inc);
  EXPECT_GT(inc.fault_events, 0u);
  EXPECT_EQ(ref.fault_events, inc.fault_events);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineEquivalence,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u, 6u),
                       ::testing::Values("fair", "madd", "varys", "aalo",
                                         "varys-edf"),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<Combo>& info) {
      std::string alloc = std::get<1>(info.param);
      for (char& ch : alloc) {
        if (ch == '-') ch = '_';  // gtest names must be identifiers
      }
      return "seed" + std::to_string(std::get<0>(info.param)) + "_" + alloc +
             "_" + (std::get<2>(info.param) ? "rack" : "fabric");
    });

}  // namespace
}  // namespace ccf::net
