// Pins the demand plane's dense ≡ sparse bit-identity (net/demand.hpp's
// equivalence contract) across the whole consumer surface: for the same
// traffic expressed as a FlowMatrix and as a Demand,
//
//  * every routing policy (ecmp | greedy | joint) picks the identical
//    RouteChoice from either representation,
//  * routed Γ and the link metrics agree bitwise,
//  * every allocator simulates the coflow to the identical completion times
//    whether it was registered dense (CoflowSpec) or sparse
//    (SparseCoflowSpec from Demand::to_flows),
//  * and a core::Engine epoch produces identical numbers for a dense
//    prebuilt submission and the equivalent sparse submission.
//
// This suite is what allows the rest of the codebase to treat the columnar
// path as a pure representation change.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "net/demand.hpp"
#include "net/multipath.hpp"
#include "net/simulator.hpp"
#include "net/topology.hpp"
#include "util/rng.hpp"

namespace ccf::net {
namespace {

constexpr const char* kAllocators[] = {"fair", "madd", "varys", "aalo",
                                       "varys-edf"};
constexpr const char* kRoutings[] = {"ecmp", "greedy", "joint"};

std::shared_ptr<const Topology> leafspine() {
  TopologySpec spec =
      TopologySpec::parse("leafspine:racks=4,hosts=2,spines=2,oversub=2");
  spec.host_rate = 100.0;
  return make_topology(spec);
}

/// The same pseudo-random shuffle, built through both representations with
/// identical insertion order (duplicates included).
void build_pair(FlowMatrix& matrix, Demand& demand, std::uint64_t seed) {
  util::Pcg32 rng(util::derive_seed(seed, 7), 7);
  for (int k = 0; k < 40; ++k) {
    const auto src = rng.bounded(8);
    const auto dst = rng.bounded(8);
    const double volume = rng.uniform(1.0, 5000.0);
    if (src == dst) continue;
    matrix.add(src, dst, volume);
    demand.add(src, dst, volume);
  }
  // Ensure at least one entry even for a pathological seed.
  if (matrix.traffic() <= 0.0) {
    matrix.add(0, 1, 100.0);
    demand.add(0, 1, 100.0);
  }
}

TEST(DemandEquivalence, EveryRoutingPolicyPicksTheSameRoutes) {
  const auto topo = leafspine();
  FlowMatrix matrix(8);
  Demand demand(8);
  build_pair(matrix, demand, 11);

  for (const char* routing : kRoutings) {
    const auto policy = make_routing_policy(routing);
    const RouteChoice dense = policy->choose(*topo, matrix);
    const RouteChoice sparse = policy->choose(*topo, demand);
    EXPECT_EQ(dense, sparse) << routing;
    EXPECT_EQ(routed_gamma(*topo, matrix, dense),
              routed_gamma(*topo, demand, sparse))
        << routing;
  }
  EXPECT_EQ(route_greedy(*topo, matrix), route_greedy(*topo, demand));
}

TEST(DemandEquivalence, EveryAllocatorSimulatesIdenticallyDenseVsSparse) {
  const auto topo = leafspine();
  FlowMatrix matrix(8);
  Demand demand(8);
  build_pair(matrix, demand, 23);

  for (const char* routing : kRoutings) {
    const auto policy = make_routing_policy(routing);
    for (const char* allocator : kAllocators) {
      Simulator dense_sim(std::make_shared<const RoutedTopology>(
                              topo, policy->choose(*topo, matrix)),
                          make_allocator(allocator));
      dense_sim.add_coflow(CoflowSpec("c", 0.0, matrix));
      const SimReport dense = dense_sim.run();

      Simulator sparse_sim(std::make_shared<const RoutedTopology>(
                               topo, policy->choose(*topo, demand)),
                           make_allocator(allocator));
      sparse_sim.add_coflow(SparseCoflowSpec("c", 0.0, demand.to_flows()));
      const SimReport sparse = sparse_sim.run();

      ASSERT_EQ(sparse.coflows.size(), dense.coflows.size())
          << allocator << "/" << routing;
      EXPECT_EQ(sparse.coflows[0].completion, dense.coflows[0].completion)
          << allocator << "/" << routing;
      EXPECT_EQ(sparse.events, dense.events) << allocator << "/" << routing;
      EXPECT_EQ(sparse.total_bytes, dense.total_bytes)
          << allocator << "/" << routing;
    }
  }
}

TEST(DemandEquivalence, EngineEpochMatchesDensePrebuiltVsSparseSubmission) {
  FlowMatrix matrix(8);
  Demand demand(8);
  build_pair(matrix, demand, 37);

  for (const char* allocator : kAllocators) {
    core::EngineOptions dense_options;
    dense_options.nodes = 8;
    dense_options.allocator = allocator;
    core::Engine dense_engine(std::move(dense_options));
    dense_engine.submit("c", 0.0, FlowMatrix(matrix));
    const core::EngineReport dense = dense_engine.drain();

    core::EngineOptions sparse_options;
    sparse_options.nodes = 8;
    sparse_options.allocator = allocator;
    core::Engine sparse_engine(std::move(sparse_options));
    SparseCoflowSpec spec("c", 0.0, demand.to_flows());
    sparse_engine.submit(std::move(spec));
    const core::EngineReport sparse = sparse_engine.drain();

    ASSERT_EQ(sparse.queries.size(), dense.queries.size()) << allocator;
    EXPECT_EQ(sparse.queries[0].traffic_bytes, dense.queries[0].traffic_bytes)
        << allocator;
    EXPECT_EQ(sparse.queries[0].gamma_seconds, dense.queries[0].gamma_seconds)
        << allocator;
    EXPECT_EQ(sparse.queries[0].cct_seconds, dense.queries[0].cct_seconds)
        << allocator;
    EXPECT_EQ(sparse.queries[0].flow_count, dense.queries[0].flow_count)
        << allocator;
    ASSERT_EQ(sparse.sim.coflows.size(), dense.sim.coflows.size())
        << allocator;
    for (std::size_t c = 0; c < dense.sim.coflows.size(); ++c) {
      EXPECT_EQ(sparse.sim.coflows[c].completion,
                dense.sim.coflows[c].completion)
          << allocator << " coflow " << c;
    }
    EXPECT_EQ(sparse.sim.events, dense.sim.events) << allocator;
  }
}

TEST(DemandEquivalence, RoutedEngineEpochMatchesDenseVsSparse) {
  FlowMatrix matrix(8);
  Demand demand(8);
  build_pair(matrix, demand, 53);

  for (const char* routing : kRoutings) {
    core::EngineOptions dense_options;
    dense_options.nodes = 8;
    dense_options.topology = "leafspine:racks=4,hosts=2,spines=2,oversub=2";
    dense_options.routing = routing;
    core::Engine dense_engine(std::move(dense_options));
    dense_engine.submit("c", 0.0, FlowMatrix(matrix));
    const core::EngineReport dense = dense_engine.drain();

    core::EngineOptions sparse_options;
    sparse_options.nodes = 8;
    sparse_options.topology = "leafspine:racks=4,hosts=2,spines=2,oversub=2";
    sparse_options.routing = routing;
    core::Engine sparse_engine(std::move(sparse_options));
    sparse_engine.submit(SparseCoflowSpec("c", 0.0, demand.to_flows()));
    const core::EngineReport sparse = sparse_engine.drain();

    ASSERT_EQ(sparse.sim.coflows.size(), dense.sim.coflows.size()) << routing;
    EXPECT_EQ(sparse.sim.coflows[0].completion, dense.sim.coflows[0].completion)
        << routing;
    EXPECT_EQ(sparse.sim.events, dense.sim.events) << routing;
  }
}

}  // namespace
}  // namespace ccf::net
