// Property suite for the chunked next-event reduction (net/next_event.hpp):
// across randomized interleavings of the mutations the engine performs —
// re-rating, completion compaction (count shrinks), arrival activation
// (count grows), fault re-rates of arbitrary subranges — the scanner must
// return the exact scalar-scan minimum (min over doubles is exact, so this
// is bit-equality, not a tolerance) and agree on the event set: the flows
// that complete at that dt.
#include "net/next_event.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "util/rng.hpp"

namespace ccf::net {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double scalar_min_dt(const std::vector<double>& remaining,
                     const std::vector<double>& rate, std::size_t count) {
  double dt = kInf;
  for (std::size_t i = 0; i < count; ++i) {
    if (rate[i] > 0.0) dt = std::min(dt, remaining[i] / rate[i]);
  }
  return dt;
}

std::vector<std::size_t> event_set(const std::vector<double>& remaining,
                                   const std::vector<double>& rate,
                                   std::size_t count, double dt) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < count; ++i) {
    if (rate[i] > 0.0 && remaining[i] / rate[i] == dt) out.push_back(i);
  }
  return out;
}

class NextEventProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NextEventProperty, MatchesScalarScanAcrossMutations) {
  util::Pcg32 rng(GetParam(), 17);
  constexpr std::size_t kCapacity = 9'000;  // > 4 chunks at the default grain
  std::vector<double> remaining(kCapacity), rate(kCapacity);
  auto randomize = [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      remaining[i] = rng.uniform(1e-3, 1e9);
      // ~1/4 of flows unrated (rate 0), as under a selective allocator.
      rate[i] = rng.uniform01() < 0.25 ? 0.0 : rng.uniform(1.0, 1e8);
    }
  };
  std::size_t count = 6'000;
  randomize(0, count);

  // Two scanners sharing the columns: one forced parallel, one forced
  // sequential — both must match the scalar scan bit-for-bit.
  NextEventScan par, seq;
  par.bind(remaining.data(), rate.data());
  seq.bind(remaining.data(), rate.data());

  for (int step = 0; step < 120; ++step) {
    switch (rng.bounded(4)) {
      case 0: {  // allocator epoch: every active rate rewritten
        for (std::size_t i = 0; i < count; ++i) {
          rate[i] = rng.uniform01() < 0.25 ? 0.0 : rng.uniform(1.0, 1e8);
        }
        par.mark_dirty(0, count);
        seq.mark_dirty(0, count);
        break;
      }
      case 1: {  // fault: re-rate an arbitrary subrange
        if (count == 0) break;
        const std::size_t b = rng.bounded(static_cast<std::uint32_t>(count));
        const std::size_t e =
            b + 1 + rng.bounded(static_cast<std::uint32_t>(count - b));
        for (std::size_t i = b; i < e; ++i) {
          rate[i] = rng.uniform01() < 0.5 ? 0.0 : rng.uniform(1.0, 1e8);
        }
        par.mark_dirty(b, e);
        seq.mark_dirty(b, e);
        break;
      }
      case 2: {  // completions compacted away: count shrinks
        count -= std::min<std::size_t>(count, rng.bounded(700));
        break;  // count-change invalidation is the scanner's own job
      }
      default: {  // arrivals activated: count grows, new tail flows
        const std::size_t grown =
            std::min(kCapacity, count + 1 + rng.bounded(700));
        randomize(count, grown);
        par.mark_dirty(count, grown);
        seq.mark_dirty(count, grown);
        count = grown;
        break;
      }
    }
    const double expect = scalar_min_dt(remaining, rate, count);
    const double got_par = par.min_dt(count, /*parallel_threshold=*/0);
    const double got_seq = seq.min_dt(count, /*parallel_threshold=*/SIZE_MAX);
    ASSERT_EQ(got_par, expect) << "step " << step << " count " << count;
    ASSERT_EQ(got_seq, expect) << "step " << step << " count " << count;
    if (expect < kInf) {
      // Same dt bit-for-bit => same completing-flow set under the engine's
      // remaining -= rate*dt advance.
      ASSERT_EQ(event_set(remaining, rate, count, got_par),
                event_set(remaining, rate, count, expect));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NextEventProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(NextEventScan, EmptyAndAllUnratedReturnInfinity) {
  std::vector<double> remaining{1.0, 2.0, 3.0}, rate{0.0, 0.0, 0.0};
  NextEventScan scan;
  scan.bind(remaining.data(), rate.data());
  EXPECT_EQ(scan.min_dt(0, 0), kInf);
  EXPECT_EQ(scan.min_dt(3, 0), kInf);
  rate[1] = 2.0;
  scan.mark_dirty(1, 2);
  EXPECT_EQ(scan.min_dt(3, 0), 1.0);
}

TEST(NextEventScan, CleanChunksServeCachedMinima) {
  // A stale cache would be wrong if dirty tracking missed updates; a fresh
  // scan would be wasteful but right. This pins the cache actually being
  // reused: mutate WITHOUT marking dirty and observe the stale (cached)
  // value, then mark and observe the fresh one.
  constexpr std::size_t kCount = 5'000;
  std::vector<double> remaining(kCount, 100.0), rate(kCount, 1.0);
  NextEventScan scan;
  scan.bind(remaining.data(), rate.data(), /*grain=*/512);
  ASSERT_EQ(scan.min_dt(kCount, SIZE_MAX), 100.0);
  remaining[42] = 1.0;  // not marked: chunk 0 stays clean
  EXPECT_EQ(scan.min_dt(kCount, SIZE_MAX), 100.0) << "cache was not consulted";
  scan.mark_dirty(42, 43);
  EXPECT_EQ(scan.min_dt(kCount, SIZE_MAX), 1.0);
}

}  // namespace
}  // namespace ccf::net
