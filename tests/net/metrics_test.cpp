#include "net/metrics.hpp"

#include <gtest/gtest.h>

namespace ccf::net {
namespace {

// The paper's SP1 flow pattern (Fig. 2(c)): p1->p2: 3, p2->p1: 2, p2->p3: 1,
// p3->p1: 1, in tuple units.
FlowMatrix sp1() {
  FlowMatrix m(3);
  m.set(0, 1, 3.0);
  m.set(1, 0, 2.0);
  m.set(1, 2, 1.0);
  m.set(2, 0, 1.0);
  return m;
}

TEST(PortLoads, ComputesEgressIngress) {
  const auto loads = port_loads(sp1());
  EXPECT_DOUBLE_EQ(loads.egress[0], 3.0);
  EXPECT_DOUBLE_EQ(loads.egress[1], 3.0);
  EXPECT_DOUBLE_EQ(loads.egress[2], 1.0);
  EXPECT_DOUBLE_EQ(loads.ingress[0], 3.0);
  EXPECT_DOUBLE_EQ(loads.ingress[1], 3.0);
  EXPECT_DOUBLE_EQ(loads.ingress[2], 1.0);
  EXPECT_DOUBLE_EQ(loads.max_egress, 3.0);
  EXPECT_DOUBLE_EQ(loads.max_ingress, 3.0);
  EXPECT_DOUBLE_EQ(loads.bottleneck(), 3.0);
}

TEST(GammaBound, Sp1TakesThreeTimeUnits) {
  // Unit-capacity ports (1 tuple per time unit): CCT bound = 3, matching the
  // paper's optimal coflow schedule for SP1 in Fig. 2(c).
  EXPECT_DOUBLE_EQ(gamma_bound(sp1(), Fabric(3, 1.0)), 3.0);
}

TEST(GammaBound, ScalesInverselyWithCapacity) {
  EXPECT_DOUBLE_EQ(gamma_bound(sp1(), Fabric(3, 2.0)), 1.5);
}

TEST(GammaBound, DiagonalIsFree) {
  FlowMatrix m(2);
  m.set(0, 0, 100.0);
  m.set(0, 1, 4.0);
  EXPECT_DOUBLE_EQ(gamma_bound(m, Fabric(2, 1.0)), 4.0);
}

TEST(GammaBound, HeterogeneousPorts) {
  FlowMatrix m(2);
  m.set(0, 1, 10.0);
  // Egress of node 0 is the bottleneck at capacity 1; ingress of node 1 has
  // capacity 5.
  const Fabric f({1.0, 5.0}, {5.0, 5.0});
  EXPECT_DOUBLE_EQ(gamma_bound(m, f), 10.0);
  const Fabric g({5.0, 5.0}, {5.0, 2.0});
  EXPECT_DOUBLE_EQ(gamma_bound(m, g), 5.0);
}

TEST(GammaBound, EmptyMatrixIsZero) {
  EXPECT_DOUBLE_EQ(gamma_bound(FlowMatrix(3), Fabric(3, 1.0)), 0.0);
}

TEST(GammaBound, MismatchedFabricThrows) {
  const auto loads = port_loads(sp1());
  EXPECT_THROW(gamma_bound(loads, Fabric(4, 1.0)), std::invalid_argument);
}

}  // namespace
}  // namespace ccf::net
