// Deadline-aware coflow scheduling (Varys's second mode; the paper's related
// work cites "meeting coflow deadlines" as a coflow-scheduling objective).
#include <gtest/gtest.h>

#include "net/metrics.hpp"
#include "net/simulator.hpp"

namespace ccf::net {
namespace {

FlowMatrix single_flow(double vol) {
  FlowMatrix m(2);
  m.set(0, 1, vol);
  return m;
}

TEST(VarysDeadline, FeasibleDeadlineIsMetExactly) {
  // 100 B at 10 B/s needs 10 s; deadline 20 s => admitted, finishes at 20 s
  // (minimum-rate allocation frees the rest of the port).
  Simulator sim(Fabric(2, 10.0), make_allocator("varys-edf"));
  CoflowSpec spec("d", 0.0, single_flow(100.0));
  spec.deadline = 20.0;
  sim.add_coflow(std::move(spec));
  const SimReport r = sim.run();
  EXPECT_FALSE(r.coflows[0].rejected);
  EXPECT_TRUE(r.coflows[0].met_deadline());
  EXPECT_NEAR(r.coflows[0].completion, 20.0, 1e-9);
}

TEST(VarysDeadline, InfeasibleDeadlineIsRejectedAtArrival) {
  // 100 B at 10 B/s needs >= 10 s; deadline 5 s => rejected.
  Simulator sim(Fabric(2, 10.0), make_allocator("varys-edf"));
  CoflowSpec spec("d", 0.0, single_flow(100.0));
  spec.deadline = 5.0;
  sim.add_coflow(std::move(spec));
  const SimReport r = sim.run();
  EXPECT_TRUE(r.coflows[0].rejected);
  EXPECT_FALSE(r.coflows[0].met_deadline());
  EXPECT_NEAR(r.coflows[0].completion, 0.0, 1e-9);
  EXPECT_NEAR(r.total_bytes, 0.0, 1e-9);  // nothing was moved
}

TEST(VarysDeadline, AdmittedGuaranteeSurvivesLaterArrivals) {
  // Coflow A (deadline 20) admitted at t=0 with rate 5 of 10. Coflow B
  // arrives at t=1 with an aggressive deadline needing more than the
  // leftover 5 B/s on the shared port -> B rejected, A still meets 20 s.
  Simulator sim(Fabric(2, 10.0), make_allocator("varys-edf"));
  CoflowSpec a("a", 0.0, single_flow(100.0));
  a.deadline = 20.0;
  CoflowSpec b("b", 1.0, single_flow(60.0));
  b.deadline = 8.0;  // needs 60/8 = 7.5 > 10 - 100/20 = 5 leftover
  sim.add_coflow(std::move(a));
  sim.add_coflow(std::move(b));
  const SimReport r = sim.run();
  EXPECT_FALSE(r.cct_of("a") > 20.0);
  EXPECT_TRUE(r.coflows[0].met_deadline());
  EXPECT_TRUE(r.coflows[1].rejected);
}

TEST(VarysDeadline, TwoFeasibleDeadlinesCoexist) {
  Simulator sim(Fabric(3, 10.0), make_allocator("varys-edf"));
  FlowMatrix m1(3);
  m1.set(0, 1, 40.0);  // needs 4 s min
  CoflowSpec a("a", 0.0, std::move(m1));
  a.deadline = 10.0;  // rate 4
  FlowMatrix m2(3);
  m2.set(0, 2, 30.0);  // shares egress 0 with a
  CoflowSpec b("b", 0.0, std::move(m2));
  b.deadline = 6.0;  // rate 5; total egress-0 demand 9 <= 10
  sim.add_coflow(std::move(a));
  sim.add_coflow(std::move(b));
  const SimReport r = sim.run();
  EXPECT_TRUE(r.coflows[0].met_deadline());
  EXPECT_TRUE(r.coflows[1].met_deadline());
  EXPECT_NEAR(r.cct_of("a"), 10.0, 1e-9);
  EXPECT_NEAR(r.cct_of("b"), 6.0, 1e-9);
}

TEST(VarysDeadline, DeadlineFreeCoflowsBackfillLeftovers) {
  Simulator sim(Fabric(2, 10.0), make_allocator("varys-edf"));
  CoflowSpec d("deadline", 0.0, single_flow(100.0));
  d.deadline = 20.0;  // rate 5, leaves 5 for best-effort
  CoflowSpec e("besteffort", 0.0, single_flow(50.0));
  sim.add_coflow(std::move(d));
  sim.add_coflow(std::move(e));
  const SimReport r = sim.run();
  EXPECT_TRUE(r.coflows[0].met_deadline());
  // Best effort gets 5 B/s while the guarantee runs: 50/5 = 10 s.
  EXPECT_NEAR(r.cct_of("besteffort"), 10.0, 1e-9);
}

TEST(VarysDeadline, NoDeadlinesDegeneratesToSebf) {
  // Without any deadlines varys-edf should order exactly like varys.
  auto run_with = [&](const char* name) {
    Simulator sim(Fabric(2, 10.0), make_allocator(name));
    sim.add_coflow(CoflowSpec("big", 0.0, single_flow(100.0)));
    sim.add_coflow(CoflowSpec("small", 0.0, single_flow(50.0)));
    return sim.run();
  };
  const SimReport edf = run_with("varys-edf");
  const SimReport varys = run_with("varys");
  EXPECT_NEAR(edf.cct_of("small"), varys.cct_of("small"), 1e-9);
  EXPECT_NEAR(edf.cct_of("big"), varys.cct_of("big"), 1e-9);
}

TEST(VarysDeadline, OtherAllocatorsIgnoreDeadlines) {
  Simulator sim(Fabric(2, 10.0), make_allocator("madd"));
  CoflowSpec spec("d", 0.0, single_flow(100.0));
  spec.deadline = 1.0;  // impossible, but MADD doesn't do admission
  sim.add_coflow(std::move(spec));
  const SimReport r = sim.run();
  EXPECT_FALSE(r.coflows[0].rejected);
  EXPECT_FALSE(r.coflows[0].met_deadline());  // finished at 10 s > 1 s
  EXPECT_NEAR(r.coflows[0].completion, 10.0, 1e-9);
}

TEST(VarysDeadline, NegativeDeadlineRejectedByApi) {
  Simulator sim(Fabric(2, 1.0), make_allocator("varys-edf"));
  CoflowSpec spec("bad", 0.0, single_flow(1.0));
  spec.deadline = -1.0;
  EXPECT_THROW(sim.add_coflow(std::move(spec)), std::invalid_argument);
}

}  // namespace
}  // namespace ccf::net
