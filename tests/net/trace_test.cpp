#include "net/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ccf::net {
namespace {

constexpr const char* kSample =
    "4 2\n"
    "COF1 0 2 0 1 2 2:100 3:50\n"
    "COF2 2500 1 3 1 0:8\n";

TEST(ParseCoflowTrace, ReadsHeaderAndCoflows) {
  std::istringstream in(kSample);
  const CoflowTrace trace = parse_coflow_trace(in);
  EXPECT_EQ(trace.racks, 4u);
  ASSERT_EQ(trace.coflows.size(), 2u);

  const TraceCoflow& c1 = trace.coflows[0];
  EXPECT_EQ(c1.id, "COF1");
  EXPECT_DOUBLE_EQ(c1.arrival_seconds, 0.0);
  EXPECT_EQ(c1.mappers, (std::vector<std::uint32_t>{0, 1}));
  ASSERT_EQ(c1.reducers.size(), 2u);
  EXPECT_EQ(c1.reducers[0].first, 2u);
  EXPECT_DOUBLE_EQ(c1.reducers[0].second, 100.0);
  EXPECT_DOUBLE_EQ(c1.total_bytes(), 150e6);

  const TraceCoflow& c2 = trace.coflows[1];
  EXPECT_DOUBLE_EQ(c2.arrival_seconds, 2.5);  // millis -> seconds
  EXPECT_EQ(c2.mappers, (std::vector<std::uint32_t>{3}));
}

TEST(ParseCoflowTrace, RejectsMalformedInput) {
  auto expect_throw = [](const std::string& text) {
    std::istringstream in(text);
    EXPECT_THROW(parse_coflow_trace(in), std::invalid_argument) << text;
  };
  expect_throw("");                          // empty
  expect_throw("0 1\n");                     // zero racks
  expect_throw("4 1\nC1 0 0 1 0:5\n");       // zero mappers
  expect_throw("4 1\nC1 0 1 9 1 0:5\n");     // mapper rack out of range
  expect_throw("4 1\nC1 0 1 0 1 9:5\n");     // reducer rack out of range
  expect_throw("4 1\nC1 0 1 0 1 2\n");       // reducer missing :MB
  expect_throw("4 1\nC1 -5 1 0 1 2:5\n");    // negative arrival
  expect_throw("4 2\nC1 0 1 0 1 2:5\n");     // header count mismatch
}

TEST(WriteCoflowTrace, RoundTrips) {
  std::istringstream in(kSample);
  const CoflowTrace trace = parse_coflow_trace(in);
  std::ostringstream out;
  write_coflow_trace(trace, out);
  std::istringstream in2(out.str());
  const CoflowTrace again = parse_coflow_trace(in2);
  ASSERT_EQ(again.coflows.size(), trace.coflows.size());
  for (std::size_t i = 0; i < trace.coflows.size(); ++i) {
    EXPECT_EQ(again.coflows[i].id, trace.coflows[i].id);
    EXPECT_DOUBLE_EQ(again.coflows[i].arrival_seconds,
                     trace.coflows[i].arrival_seconds);
    EXPECT_EQ(again.coflows[i].mappers, trace.coflows[i].mappers);
    EXPECT_EQ(again.coflows[i].reducers, trace.coflows[i].reducers);
  }
}

TEST(ToCoflowSpecs, SplitsReducerBytesOverMappers) {
  std::istringstream in(kSample);
  const auto specs = to_coflow_specs(parse_coflow_trace(in));
  ASSERT_EQ(specs.size(), 2u);
  // COF1: reducer rack 2 gets 100 MB from mappers {0,1}: 50 MB per mapper.
  const FlowMatrix& f1 = specs[0].flows;
  EXPECT_DOUBLE_EQ(f1.volume(0, 2), 50e6);
  EXPECT_DOUBLE_EQ(f1.volume(1, 2), 50e6);
  EXPECT_DOUBLE_EQ(f1.volume(0, 3), 25e6);
  EXPECT_DOUBLE_EQ(f1.volume(1, 3), 25e6);
  EXPECT_DOUBLE_EQ(f1.traffic(), 150e6);
  // COF2: single mapper rack 3, reducer rack 0.
  EXPECT_DOUBLE_EQ(specs[1].flows.volume(3, 0), 8e6);
  EXPECT_DOUBLE_EQ(specs[1].arrival, 2.5);
}

TEST(ToCoflowSpecs, MapperEqualsReducerIsLocal) {
  std::istringstream in("2 1\nC1 0 2 0 1 1 0:10\n");
  const auto specs = to_coflow_specs(parse_coflow_trace(in));
  // Mapper 0 == reducer 0: only mapper 1 ships its 5 MB share.
  EXPECT_DOUBLE_EQ(specs[0].flows.traffic(), 5e6);
  EXPECT_DOUBLE_EQ(specs[0].flows.volume(1, 0), 5e6);
}

TEST(GenerateSyntheticTrace, ShapeAndDeterminism) {
  SyntheticTraceOptions opts;
  opts.racks = 20;
  opts.coflows = 50;
  util::Pcg32 rng_a(9, 9), rng_b(9, 9);
  const CoflowTrace a = generate_synthetic_trace(opts, rng_a);
  const CoflowTrace b = generate_synthetic_trace(opts, rng_b);
  EXPECT_EQ(a.racks, 20u);
  ASSERT_EQ(a.coflows.size(), 50u);
  ASSERT_EQ(b.coflows.size(), 50u);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(a.coflows[i].mappers, b.coflows[i].mappers);
    EXPECT_DOUBLE_EQ(a.coflows[i].arrival_seconds,
                     b.coflows[i].arrival_seconds);
    // Arrivals sorted within the window.
    if (i > 0) {
      EXPECT_GE(a.coflows[i].arrival_seconds,
                a.coflows[i - 1].arrival_seconds);
    }
    EXPECT_LE(a.coflows[i].arrival_seconds, opts.duration_seconds);
    for (const auto m : a.coflows[i].mappers) EXPECT_LT(m, 20u);
  }
}

TEST(GenerateSyntheticTrace, HeavyTailPresent) {
  SyntheticTraceOptions opts;
  opts.racks = 30;
  opts.coflows = 200;
  opts.heavy_fraction = 0.2;
  util::Pcg32 rng(3, 3);
  const CoflowTrace trace = generate_synthetic_trace(opts, rng);
  std::vector<double> sizes;
  for (const auto& c : trace.coflows) sizes.push_back(c.total_bytes());
  std::sort(sizes.begin(), sizes.end());
  // The biggest coflow should dwarf the median by orders of magnitude.
  EXPECT_GT(sizes.back(), 20.0 * sizes[sizes.size() / 2]);
}

TEST(GenerateSyntheticTrace, RoundTripsThroughTheTextFormat) {
  SyntheticTraceOptions opts;
  opts.racks = 10;
  opts.coflows = 8;
  util::Pcg32 rng(4, 4);
  const CoflowTrace trace = generate_synthetic_trace(opts, rng);
  std::ostringstream out;
  write_coflow_trace(trace, out);
  std::istringstream in(out.str());
  const CoflowTrace again = parse_coflow_trace(in);
  ASSERT_EQ(again.coflows.size(), trace.coflows.size());
  for (std::size_t i = 0; i < trace.coflows.size(); ++i) {
    EXPECT_NEAR(again.coflows[i].total_bytes(), trace.coflows[i].total_bytes(),
                1e-3);
  }
}

TEST(LoadCoflowTrace, MissingFileThrows) {
  EXPECT_THROW(load_coflow_trace("/nonexistent/trace.txt"), std::runtime_error);
}

}  // namespace
}  // namespace ccf::net
