// Unit + golden tests of the general topology layer (src/net/topology.hpp):
// link layout and capacities of each factory against hand-computed values,
// route-set sizes, the intra-rack src==dst short-circuit and the
// append_links src != dst contract, TopologySpec parsing, and seeded
// generator determinism (same seed -> same topology, build after build).
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

#include "net/multipath.hpp"
#include "net/rack.hpp"
#include "net/topology.hpp"

namespace ccf::net {
namespace {

// --- leaf-spine golden ------------------------------------------------

TEST(TopologyLeafSpine, MatchesHandComputedLayout) {
  // 2 racks x 2 hosts, 2 spines, 2:1 oversubscription at 10 B/s ports.
  const auto topo = Topology::leaf_spine(2, 2, 2, 10.0, 2.0);
  ASSERT_EQ(topo->nodes(), 4u);
  EXPECT_EQ(topo->kind(), TopologyKind::kLeafSpine);
  // 2n host ports + R*S uplinks + R*S downlinks.
  ASSERT_EQ(topo->link_count(), 8u + 4u + 4u);
  EXPECT_EQ(topo->graph_nodes(), 4u + 2u + 2u);  // hosts + ToRs + spines

  for (Topology::LinkId l = 0; l < 8; ++l) {
    EXPECT_DOUBLE_EQ(topo->link_capacity(l), 10.0) << "host port " << l;
  }
  // Per-uplink capacity: hosts * rate / (oversub * spines) = 2*10/(2*2) = 5.
  for (Topology::LinkId l = 8; l < 16; ++l) {
    EXPECT_DOUBLE_EQ(topo->link_capacity(l), 5.0) << "switch link " << l;
  }

  // Intra-rack pair: the switch layer is short-circuited.
  EXPECT_EQ(topo->path_count(0, 1), 1u);
  EXPECT_EQ(topo->path_links(0, 1, 0), (std::vector<Topology::LinkId>{0, 5}));

  // Cross-rack pair: one path per spine, MultiPathFabric's id layout
  // (up(r,s) = 2n + r*S + s, down(r,s) = 2n + R*S + r*S + s).
  ASSERT_EQ(topo->path_count(0, 2), 2u);
  EXPECT_EQ(topo->path_links(0, 2, 0),
            (std::vector<Topology::LinkId>{0, 8, 14, 6}));
  EXPECT_EQ(topo->path_links(0, 2, 1),
            (std::vector<Topology::LinkId>{0, 9, 15, 6}));
  EXPECT_EQ(topo->max_path_count(), 2u);

  // Undersubscription (the flat-equivalence regime) is allowed.
  const auto fat = Topology::leaf_spine(2, 2, 2, 10.0, 0.25);
  EXPECT_DOUBLE_EQ(fat->link_capacity(8), 40.0);
}

TEST(TopologyLeafSpine, RejectsBadDimensions) {
  EXPECT_THROW(Topology::leaf_spine(0, 2, 2, 10.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(Topology::leaf_spine(2, 2, 2, 10.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(Topology::leaf_spine(2, 2, 2, -1.0, 1.0),
               std::invalid_argument);
}

// --- fat-tree golden --------------------------------------------------

TEST(TopologyFatTree, MatchesAlFaresStructure) {
  // k=4: 16 hosts, 8 edge + 8 agg + 4 core switches.
  const auto topo = Topology::fat_tree(4, 10.0);
  ASSERT_EQ(topo->nodes(), 16u);
  EXPECT_EQ(topo->kind(), TopologyKind::kFatTree);
  EXPECT_EQ(topo->graph_nodes(), 16u + 8u + 8u + 4u);
  // 2n host ports + 2 * (edge-agg pairs) + 2 * (agg-core pairs).
  EXPECT_EQ(topo->link_count(), 32u + 2u * 16u + 2u * 16u);

  // Full bisection: every link runs at the host rate.
  for (Topology::LinkId l = 0; l < topo->link_count(); ++l) {
    EXPECT_DOUBLE_EQ(topo->link_capacity(l), 10.0) << "link " << l;
  }

  // Path counts: 1 under one edge switch, k/2 inside a pod, (k/2)^2 across
  // pods. Hosts 0,1 share edge (0,0); host 2 is under edge (0,1); host 4
  // lives in pod 1.
  EXPECT_EQ(topo->path_count(0, 1), 1u);
  EXPECT_EQ(topo->path_count(0, 2), 2u);
  EXPECT_EQ(topo->path_count(0, 4), 4u);
  EXPECT_EQ(topo->max_path_count(), 4u);

  // Same-edge pair short-circuits the switch fabric entirely.
  EXPECT_EQ(topo->path_links(0, 1, 0),
            (std::vector<Topology::LinkId>{0, 16 + 1}));

  // An inter-pod path has exactly egress + 4 switch links + ingress, and its
  // link endpoints chain src -> ... -> dst.
  const auto path = topo->path_links(0, 4, 3);
  ASSERT_EQ(path.size(), 6u);
  EXPECT_EQ(topo->link_ends(path.front()).tail, 0u);
  EXPECT_EQ(topo->link_ends(path.back()).head, 4u);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_EQ(topo->link_ends(path[i]).head, topo->link_ends(path[i + 1]).tail)
        << "hop " << i;
  }

  // Core oversubscription scales only the agg<->core layer.
  const auto thin = Topology::fat_tree(4, 10.0, 2.0);
  EXPECT_DOUBLE_EQ(thin->link_capacity(32), 10.0);       // edge-agg
  EXPECT_DOUBLE_EQ(thin->link_capacity(32 + 32), 5.0);   // agg-core

  EXPECT_THROW(Topology::fat_tree(3, 10.0), std::invalid_argument);
  EXPECT_THROW(Topology::fat_tree(0, 10.0), std::invalid_argument);
}

// --- waxman golden + determinism --------------------------------------

TEST(TopologyWaxman, SameSeedSameTopology) {
  WaxmanOptions options;
  options.routers = 6;
  options.route_k = 3;
  const auto a = Topology::waxman(12, 10.0, 42, options);
  const auto b = Topology::waxman(12, 10.0, 42, options);
  ASSERT_EQ(a->nodes(), b->nodes());
  ASSERT_EQ(a->link_count(), b->link_count());
  for (Topology::LinkId l = 0; l < a->link_count(); ++l) {
    EXPECT_DOUBLE_EQ(a->link_capacity(l), b->link_capacity(l));
    EXPECT_EQ(a->link_ends(l).tail, b->link_ends(l).tail);
    EXPECT_EQ(a->link_ends(l).head, b->link_ends(l).head);
  }
  for (std::uint32_t i = 0; i < a->nodes(); ++i) {
    for (std::uint32_t j = 0; j < a->nodes(); ++j) {
      if (i == j) continue;
      ASSERT_EQ(a->path_count(i, j), b->path_count(i, j));
      for (std::uint32_t k = 0; k < a->path_count(i, j); ++k) {
        EXPECT_EQ(a->path_links(i, j, k), b->path_links(i, j, k));
      }
    }
  }
}

TEST(TopologyWaxman, DifferentSeedsDiverge) {
  // Two seeds agreeing on every link end would mean the seed is ignored.
  WaxmanOptions options;
  options.routers = 8;
  const auto a = Topology::waxman(16, 10.0, 1, options);
  const auto b = Topology::waxman(16, 10.0, 2, options);
  bool diverged = a->link_count() != b->link_count();
  for (Topology::LinkId l = 0; !diverged && l < a->link_count(); ++l) {
    diverged = a->link_ends(l).tail != b->link_ends(l).tail ||
               a->link_ends(l).head != b->link_ends(l).head;
  }
  EXPECT_TRUE(diverged);
}

TEST(TopologyWaxman, EveryPairRoutedAndCapacitiesPositive) {
  const auto topo = Topology::waxman(10, 10.0, 7, {});
  for (Topology::LinkId l = 0; l < topo->link_count(); ++l) {
    EXPECT_GT(topo->link_capacity(l), 0.0);
  }
  for (std::uint32_t i = 0; i < topo->nodes(); ++i) {
    for (std::uint32_t j = 0; j < topo->nodes(); ++j) {
      if (i != j) EXPECT_GE(topo->path_count(i, j), 1u);
    }
  }
  EXPECT_THROW(Topology::waxman(4, 10.0, 1, {.routers = 9}),
               std::invalid_argument);
  EXPECT_THROW(Topology::waxman(4, 10.0, 1, {.alpha = 1.5}),
               std::invalid_argument);
}

// --- RoutedTopology as a Network --------------------------------------

TEST(RoutedTopology, AdaptsChoiceToAppendLinks) {
  const auto topo = Topology::leaf_spine(2, 2, 2, 10.0, 1.0);
  RouteChoice choice = route_ecmp(*topo);
  choice[0 * 4 + 2] = 1;  // pin (0 -> 2) onto spine 1
  const RoutedTopology net(topo, choice);
  EXPECT_EQ(net.nodes(), 4u);
  EXPECT_EQ(net.link_count(), topo->link_count());
  EXPECT_EQ(net.links_of(0, 2), topo->path_links(0, 2, 1));
  EXPECT_EQ(net.links_of(0, 1), topo->path_links(0, 1, 0));

  EXPECT_THROW(RoutedTopology(nullptr, choice), std::invalid_argument);
  EXPECT_THROW(RoutedTopology(topo, RouteChoice(3, 0)), std::invalid_argument);
  RouteChoice bad = route_ecmp(*topo);
  bad[0 * 4 + 2] = 9;
  EXPECT_THROW(RoutedTopology(topo, bad), std::out_of_range);
}

// --- the src != dst contract (satellite fix) ---------------------------

TEST(AppendLinksContract, IntraRackShortCircuitIsDistinctFromSelfFlow) {
  // The valid short-circuit: src != dst in the SAME rack skips the switch
  // layer on every two-tier topology.
  const RackFabric rack(2, 2, 10.0, 2.0);
  EXPECT_EQ(rack.links_of(0, 1),
            (std::vector<Network::LinkId>{0, 4 + 1}));
  const auto topo = Topology::leaf_spine(2, 2, 2, 10.0, 2.0);
  const RoutedTopology routed(topo, route_ecmp(*topo));
  EXPECT_EQ(routed.links_of(0, 1),
            (std::vector<Network::LinkId>{0, 4 + 1}));

  // The invalid self-flow now dies under a debug assert on every topology
  // (release builds keep asserts compiled out; the routed topology then
  // throws — its route table has no entry for the diagonal).
#ifndef NDEBUG
  std::vector<Network::LinkId> out;
  EXPECT_DEATH(rack.append_links(1, 1, out), "src != dst");
  EXPECT_DEATH(Fabric(4, 10.0).append_links(2, 2, out), "src != dst");
  EXPECT_DEATH(routed.append_links(3, 3, out), "src != dst");
#else
  std::vector<Network::LinkId> out;
  EXPECT_THROW(routed.append_links(3, 3, out), std::out_of_range);
#endif
}

// --- TopologySpec parsing ----------------------------------------------

TEST(TopologySpec, ParsesAndRoundTrips) {
  const auto ls =
      TopologySpec::parse("leafspine:racks=32,hosts=16,spines=4,oversub=4");
  EXPECT_EQ(ls.kind, TopologyKind::kLeafSpine);
  EXPECT_EQ(ls.racks, 32u);
  EXPECT_EQ(ls.hosts, 16u);
  EXPECT_EQ(ls.spines, 4u);
  EXPECT_DOUBLE_EQ(ls.oversub, 4.0);
  EXPECT_EQ(ls.node_count(), 512u);
  EXPECT_EQ(TopologySpec::parse(ls.to_string()).to_string(), ls.to_string());

  const auto ft = TopologySpec::parse("fattree:k=8,core-scale=2");
  EXPECT_EQ(ft.kind, TopologyKind::kFatTree);
  EXPECT_EQ(ft.fat_k, 8u);
  EXPECT_DOUBLE_EQ(ft.core_scale, 2.0);
  EXPECT_EQ(ft.node_count(), 128u);

  const auto wx = TopologySpec::parse("waxman:nodes=24,routers=8,seed=7,paths=4");
  EXPECT_EQ(wx.kind, TopologyKind::kIrregular);
  EXPECT_EQ(wx.nodes, 24u);
  EXPECT_EQ(wx.waxman.routers, 8u);
  EXPECT_EQ(wx.seed, 7u);
  EXPECT_EQ(wx.waxman.route_k, 4u);
  EXPECT_EQ(wx.node_count(), 24u);

  // Bare kind uses the defaults.
  EXPECT_EQ(TopologySpec::parse("leafspine").racks, 4u);

  EXPECT_THROW(TopologySpec::parse("torus:k=3"), std::invalid_argument);
  EXPECT_THROW(TopologySpec::parse("leafspine:bogus=1"),
               std::invalid_argument);
  EXPECT_THROW(TopologySpec::parse("leafspine:racks=abc"),
               std::invalid_argument);
  EXPECT_THROW(TopologySpec::parse("leafspine:racks"), std::invalid_argument);
}

TEST(TopologySpec, MakeTopologyDispatches) {
  const auto ls = make_topology(TopologySpec::parse("leafspine:racks=3,hosts=2"));
  EXPECT_EQ(ls->kind(), TopologyKind::kLeafSpine);
  EXPECT_EQ(ls->nodes(), 6u);
  const auto ft = make_topology(TopologySpec::parse("fattree:k=4"));
  EXPECT_EQ(ft->kind(), TopologyKind::kFatTree);
  EXPECT_EQ(ft->nodes(), 16u);
  const auto wx = make_topology(TopologySpec::parse("waxman:nodes=8,routers=3"));
  EXPECT_EQ(wx->kind(), TopologyKind::kIrregular);
  EXPECT_EQ(wx->nodes(), 8u);
}

}  // namespace
}  // namespace ccf::net
