#include "net/rack.hpp"

#include <gtest/gtest.h>

#include "net/metrics.hpp"
#include "net/simulator.hpp"

namespace ccf::net {
namespace {

TEST(RackFabric, BasicGeometry) {
  const RackFabric topo(3, 4, 100.0, 2.0);
  EXPECT_EQ(topo.nodes(), 12u);
  EXPECT_EQ(topo.racks(), 3u);
  EXPECT_EQ(topo.hosts_per_rack(), 4u);
  EXPECT_EQ(topo.link_count(), 2 * 12 + 2 * 3);
  EXPECT_DOUBLE_EQ(topo.host_rate(), 100.0);
  // Uplink = 4 hosts x 100 / oversub 2 = 200.
  EXPECT_DOUBLE_EQ(topo.uplink_rate(), 200.0);
  EXPECT_EQ(topo.rack_of(0), 0u);
  EXPECT_EQ(topo.rack_of(3), 0u);
  EXPECT_EQ(topo.rack_of(4), 1u);
  EXPECT_EQ(topo.rack_of(11), 2u);
}

TEST(RackFabric, LinkCapacities) {
  const RackFabric topo(2, 3, 10.0, 1.5);
  for (std::size_t node = 0; node < 6; ++node) {
    EXPECT_DOUBLE_EQ(topo.link_capacity(topo.egress_link(node)), 10.0);
    EXPECT_DOUBLE_EQ(topo.link_capacity(topo.ingress_link(node)), 10.0);
  }
  for (std::size_t rack = 0; rack < 2; ++rack) {
    EXPECT_DOUBLE_EQ(topo.link_capacity(topo.uplink_out_link(rack)), 20.0);
    EXPECT_DOUBLE_EQ(topo.link_capacity(topo.uplink_in_link(rack)), 20.0);
  }
  EXPECT_THROW(topo.link_capacity(99), std::out_of_range);
}

TEST(RackFabric, IntraRackFlowUsesTwoLinks) {
  const RackFabric topo(2, 3);
  const auto links = topo.links_of(0, 2);  // both in rack 0
  ASSERT_EQ(links.size(), 2u);
  EXPECT_EQ(links[0], topo.egress_link(0));
  EXPECT_EQ(links[1], topo.ingress_link(2));
}

TEST(RackFabric, CrossRackFlowUsesFourLinks) {
  const RackFabric topo(2, 3);
  const auto links = topo.links_of(1, 4);  // rack 0 -> rack 1
  ASSERT_EQ(links.size(), 4u);
  EXPECT_EQ(links[0], topo.egress_link(1));
  EXPECT_EQ(links[1], topo.uplink_out_link(0));
  EXPECT_EQ(links[2], topo.uplink_in_link(1));
  EXPECT_EQ(links[3], topo.ingress_link(4));
}

TEST(RackFabric, RejectsInvalidArguments) {
  EXPECT_THROW(RackFabric(0, 3), std::invalid_argument);
  EXPECT_THROW(RackFabric(3, 0), std::invalid_argument);
  EXPECT_THROW(RackFabric(2, 2, 0.0), std::invalid_argument);
  EXPECT_THROW(RackFabric(2, 2, 1.0, 0.5), std::invalid_argument);
}

TEST(RackGamma, UplinkBecomesTheBottleneck) {
  // 2 racks x 2 hosts, host rate 10, oversub 4 -> uplink 5.
  const RackFabric topo(2, 2, 10.0, 4.0);
  FlowMatrix flows(4);
  flows.set(0, 2, 10.0);  // cross-rack
  // Host bound: 10/10 = 1 s. Uplink bound: 10/5 = 2 s.
  EXPECT_DOUBLE_EQ(gamma_bound(flows, topo), 2.0);
}

TEST(RackGamma, IntraRackUnaffectedByOversubscription) {
  const RackFabric topo(2, 2, 10.0, 8.0);
  FlowMatrix flows(4);
  flows.set(0, 1, 10.0);  // same rack
  EXPECT_DOUBLE_EQ(gamma_bound(flows, topo), 1.0);
}

TEST(RackGamma, AggregatesUplinkLoadAcrossHosts) {
  // Both hosts of rack 0 send 10 to rack 1: uplink-out of rack 0 carries 20.
  const RackFabric topo(2, 2, 10.0, 1.0);  // uplink = 20
  FlowMatrix flows(4);
  flows.set(0, 2, 10.0);
  flows.set(1, 3, 10.0);
  // Hosts: 10/10 = 1 s. Uplink out rack0: 20/20 = 1 s. Tie at 1.
  EXPECT_DOUBLE_EQ(gamma_bound(flows, topo), 1.0);
  // With oversubscription 2 the uplink halves: bound doubles.
  const RackFabric oversub(2, 2, 10.0, 2.0);
  EXPECT_DOUBLE_EQ(gamma_bound(flows, oversub), 2.0);
}

TEST(RackGamma, FullBisectionSingleRackMatchesFlatFabric) {
  const RackFabric topo(1, 4, 10.0, 1.0);
  const Fabric flat(4, 10.0);
  FlowMatrix flows(4);
  flows.set(0, 1, 30.0);
  flows.set(2, 3, 10.0);
  flows.set(1, 2, 5.0);
  EXPECT_DOUBLE_EQ(gamma_bound(flows, topo), gamma_bound(flows, flat));
}

TEST(RackSimulator, MaddMatchesRackGamma) {
  const auto topo = std::make_shared<const RackFabric>(3, 3, 10.0, 3.0);
  FlowMatrix flows(9);
  // A mix of intra- and cross-rack flows.
  flows.set(0, 1, 40.0);
  flows.set(0, 4, 25.0);
  flows.set(2, 8, 30.0);
  flows.set(5, 3, 15.0);
  flows.set(7, 6, 20.0);
  const double gamma = gamma_bound(flows, *topo);
  Simulator sim(topo, make_allocator("madd"));
  sim.add_coflow(CoflowSpec("c", 0.0, std::move(flows)));
  const SimReport r = sim.run();
  EXPECT_NEAR(r.coflows[0].cct(), gamma, 1e-9 * gamma);
}

TEST(RackSimulator, FairSharingRespectsUplinkCapacity) {
  const auto topo = std::make_shared<const RackFabric>(2, 2, 10.0, 4.0);
  // Two cross-rack flows share the rack-0 uplink (cap 5).
  FlowMatrix flows(4);
  flows.set(0, 2, 50.0);
  flows.set(1, 3, 50.0);
  Simulator sim(topo, make_allocator("fair"));
  sim.add_coflow(CoflowSpec("c", 0.0, std::move(flows)));
  const SimReport r = sim.run();
  // Each flow gets 2.5 through the uplink: 50/2.5 = 20 s.
  EXPECT_NEAR(r.coflows[0].cct(), 20.0, 1e-9);
}

TEST(RackSimulator, SimulatorRejectsNullNetwork) {
  EXPECT_THROW(Simulator(nullptr, make_allocator("madd")),
               std::invalid_argument);
}

}  // namespace
}  // namespace ccf::net
